// drive(): the one budgeted propose → measure → observe loop every consumer
// of the search subsystem runs — runtime inference (core/inference.cpp) and
// adaptive offline data collection (tuning/collector.cpp) differ only in
// their measure/sink callbacks.
//
// Budget semantics are exact: at most `budget` calls to `measure`, and
// exactly `budget` whenever the strategy can keep supplying fresh legal
// candidates. Anytime semantics fall out of the loop shape — every measured
// candidate reaches `sink` before the next proposal round, so aborting after
// any iteration leaves a usable best-so-far.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "search/config.hpp"
#include "search/strategy.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace isaac::search {

/// Failure-domain knobs the drive loop honors, lifted out of SearchConfig so
/// callers without a full config (the offline collector) can still opt in.
struct DriveOptions {
  std::size_t budget = SIZE_MAX;
  /// Extra attempts per failing measurement (bounded retry with capped
  /// exponential backoff); 0 = the pre-hardening propagate-first-throw
  /// behavior.
  int measure_retries = 0;
  double retry_backoff_ms = 0.5;
  double retry_backoff_cap_ms = 8.0;
  /// Wall-clock deadline for the whole loop (0 = none): an expired drive
  /// stops between batches with its best-so-far, never mid-measurement.
  double timeout_ms = 0.0;
  /// Cooperative cancellation, polled between batches (nullptr = never).
  const std::atomic<bool>* cancel = nullptr;
  /// Set to true when the loop stopped early on deadline/cancellation
  /// (optional out-param; anytime results are still valid).
  bool* stopped_early = nullptr;

  DriveOptions() = default;
  /// Adopt the failure-domain fields of a resolved SearchConfig.
  explicit DriveOptions(const SearchConfig& config)
      : budget(config.budget),
        measure_retries(config.measure_retries),
        retry_backoff_ms(config.retry_backoff_ms),
        retry_backoff_cap_ms(config.retry_backoff_cap_ms),
        timeout_ms(config.timeout_ms),
        cancel(config.cancel) {}
};

/// Run `strategy` until `budget` measured evaluations (SIZE_MAX = until the
/// strategy is exhausted). `measure(tuning) -> double` is the expensive
/// oracle; `sink(proposal, measured_gflops)` receives every result. Returns
/// the number of evaluations performed.
///
/// A proposal batch is measured in parallel on the global thread pool (the
/// strategy already committed to the whole batch, so no intra-batch feedback
/// is lost) — `measure` must be thread-safe. `observe` and `sink` run
/// sequentially in proposal order afterwards, so strategies and result
/// accumulation stay single-threaded and deterministic. Inherently
/// sequential strategies (simulated annealing) simply propose one candidate
/// per round.
///
/// A `measure` throw is retried in place up to `measure_retries` times with
/// capped exponential backoff (`search.measure_retry` counts attempts); a
/// measurement still failing after its retries propagates to the caller (the
/// pool rethrows the lowest-index failure, so equal runs fail identically).
/// Results of the failing batch never reach `observe`/`sink`, keeping
/// anytime state consistent with what the caller was told.
///
/// Deadline and cancellation are cooperative: polled between batches, so a
/// drive stops with a complete batch's results sunk and its best-so-far
/// usable (`search.deadline_exceeded` / `search.cancelled` count the stops).
///
/// Model lifetime: any model the strategy's problem references must stay
/// alive and unchanged for the whole drive() — under the online model
/// lifecycle (DESIGN.md) the caller pins one Context::model_snapshot() per
/// search, which also keeps the search.measure results (the sink's
/// (proposal, gflops) stream, surfaced as TuneResult::top) attributable to
/// exactly one model version in the observation log.
template <typename Op, typename MeasureFn, typename SinkFn>
std::size_t drive(SearchStrategy<Op>& strategy, const DriveOptions& options,
                  const MeasureFn& measure, const SinkFn& sink) {
  // Proposal batch: big enough to amortize parallel measurement, small
  // enough that adaptive strategies get frequent feedback.
  constexpr std::size_t kBatch = 64;
  // Clamp to |X̂|: measuring more evaluations than the space has distinct
  // points is never useful, and it bounds "unlimited" budgets for strategies
  // that never return an empty batch (genetic fallbacks, annealing restarts).
  const std::size_t target =
      std::min<std::size_t>(options.budget, std::max<std::size_t>(strategy.space_points(), 1));
  // Wrap the oracle with bounded retry: a transient throw (an injected fault,
  // a flaky device) is retried in place after a capped exponential backoff;
  // the retried measurement is as deterministic as the original, so a retry
  // that succeeds yields the same score a fault-free run would have.
  const auto measure_with_retry = [&](const auto& tuning) {
    for (int attempt = 0;; ++attempt) {
      try {
        return measure(tuning);
      } catch (...) {
        ISAAC_TM_COUNT("fault.measure_failures");
        if (attempt >= options.measure_retries) throw;
        ISAAC_TM_COUNT("search.measure_retry");
        const double backoff_ms = std::min(options.retry_backoff_cap_ms,
                                           options.retry_backoff_ms * double(1 << attempt));
        if (backoff_ms > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(static_cast<std::int64_t>(backoff_ms * 1000.0)));
        }
      }
    }
  };
  const auto deadline = options.timeout_ms > 0.0
                            ? std::chrono::steady_clock::now() +
                                  std::chrono::microseconds(
                                      static_cast<std::int64_t>(options.timeout_ms * 1000.0))
                            : std::chrono::steady_clock::time_point::max();
  // Schedule-dependent strategies (annealing's temperature decay) pace
  // themselves against the clamped target, not the raw request — an
  // "unlimited" SIZE_MAX budget would otherwise leave their schedule frozen
  // at its starting point for the whole run.
  strategy.set_effective_budget(target);
  std::size_t measured = 0;
  std::vector<double> scores;
  while (measured < target) {
    if (options.cancel && options.cancel->load(std::memory_order_relaxed)) {
      ISAAC_TM_COUNT("search.cancelled");
      if (options.stopped_early) *options.stopped_early = true;
      break;
    }
    if (options.timeout_ms > 0.0 && std::chrono::steady_clock::now() >= deadline) {
      ISAAC_TM_COUNT("search.deadline_exceeded");
      if (options.stopped_early) *options.stopped_early = true;
      break;
    }
    const std::size_t want = std::min<std::size_t>(kBatch, target - measured);
    const std::uint64_t t_propose = telemetry::enabled() ? telemetry::now_us() : 0;
    auto proposals = [&] {
      telemetry::Span propose_span("search.propose");
      return strategy.propose(want);
    }();
    if (t_propose) {
      ISAAC_TM_RECORD("search.propose_us", telemetry::now_us() - t_propose);
      ISAAC_TM_COUNT_N("search.proposed", proposals.size());
    }
    if (proposals.empty()) break;
    if (proposals.size() > want) proposals.resize(want);  // never overspend
    scores.assign(proposals.size(), 0.0);
    const std::uint64_t t_measure = telemetry::enabled() ? telemetry::now_us() : 0;
    {
      telemetry::Span measure_span("search.measure");
      if (proposals.size() > 1) {
        ThreadPool::global().parallel_for_each(proposals.size(), [&](std::size_t i) {
          scores[i] = measure_with_retry(proposals[i].tuning);
        });
      } else {
        scores[0] = measure_with_retry(proposals[0].tuning);
      }
    }
    if (t_measure) {
      ISAAC_TM_RECORD("search.measure_us", telemetry::now_us() - t_measure);
      ISAAC_TM_COUNT_N("search.measured", proposals.size());
    }
    for (std::size_t i = 0; i < proposals.size(); ++i) {
      strategy.observe(proposals[i].choice, scores[i]);
      sink(proposals[i], scores[i]);
      ++measured;
    }
  }
  return measured;
}

/// Budget-only spelling (no retries, no deadline) — the pre-hardening
/// behavior, kept for callers like the offline collector that want a failing
/// measurement to abort immediately.
template <typename Op, typename MeasureFn, typename SinkFn>
std::size_t drive(SearchStrategy<Op>& strategy, std::size_t budget, const MeasureFn& measure,
                  const SinkFn& sink) {
  DriveOptions options;
  options.budget = budget;
  return drive(strategy, options, measure, sink);
}

}  // namespace isaac::search
