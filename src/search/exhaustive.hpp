// ExhaustiveSearch: walk every point of X̂ in lexicographic (odometer) order,
// proposing the legal ones. With an unlimited budget this measures the entire
// legal space X — the pre-subsystem ground truth — and with a finite budget
// it degrades to "measure the first `budget` legal points", which is mostly
// useful as a baseline for the adaptive strategies.
#pragma once

#include "search/strategy.hpp"

namespace isaac::search {

template <typename Op>
class ExhaustiveSearch final : public SearchStrategy<Op> {
 public:
  using Base = SearchStrategy<Op>;
  using Tuning = typename Base::Tuning;

  using Base::Base;

  const char* name() const override { return "exhaustive"; }

  std::vector<Proposal<Tuning>> propose(std::size_t max_batch) override {
    std::vector<Proposal<Tuning>> out;
    if (done_ || max_batch == 0) return out;
    const auto& domains = this->problem_.space->domains();
    if (odometer_.empty()) odometer_.assign(domains.size(), 0);
    while (out.size() < max_batch) {
      if (this->check(odometer_)) out.push_back(this->make_proposal(odometer_));
      if (!advance_choice(odometer_, domains)) {
        done_ = true;
        break;
      }
    }
    return out;
  }

 private:
  Choice odometer_;
  bool done_ = false;
};

}  // namespace isaac::search
