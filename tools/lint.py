#!/usr/bin/env python3
"""Registry lint: instrumentation names used in src/ must match DESIGN.md.

The runtime has three string-keyed namespaces that are trivially easy to
drift: telemetry keys (counters/gauges/histograms), trace span names, and
failpoint site names. A typo'd key silently mints a new metric; a renamed
failpoint silently turns a chaos test into a no-op. This lint cross-checks
the literals in the source tree against the machine-readable registries in
DESIGN.md (fenced blocks following ``<!-- lint:telemetry-keys -->``,
``<!-- lint:span-names -->``, and ``<!-- lint:failpoint-sites -->``).

Failures (exit 1):
  * a key/span/site used in src/ but absent from its registry;
  * a registered failpoint site no longer present in src/ (dead chaos hook);
  * a malformed name (uppercase, spaces, leading/trailing dots);
  * a histogram key not ending in ``_us`` (microseconds) or ``_pct``.

Registry entries ending in ``.*`` are dynamic families (e.g.
``breaker.opened.*`` — one counter per named breaker): they match any used
key with that prefix and are exempt from the unused check, since their
concrete names only exist at runtime.

Run from the repo root (the lint_registries ctest entry does):
    python3 tools/lint.py
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
DESIGN = ROOT / "DESIGN.md"
SRC = ROOT / "src"

NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")

# --- extraction -------------------------------------------------------------

TM_MACRO = re.compile(r'ISAAC_TM_(COUNT_N|COUNT|RECORD)\(\s*"([^"]+)"')
TM_DIRECT = re.compile(r'telemetry::(counter|gauge|histogram)\(\s*"([^"]+)"')
# Dynamic families built as std::string("prefix.") + suffix: the literal ends
# with '.' and the registry must carry the matching "prefix.*" entry.
TM_DYNAMIC = re.compile(r'telemetry::(counter|gauge|histogram)\(\s*std::string\(\s*"([^"]+\.)"')
# circuit_breaker.cpp's count_transition(event, name) bumps both the bare
# event counter and event.<name>, so one literal implies two registry entries.
TM_TRANSITION = re.compile(r'count_transition\(\s*"([^"]+)"')
SPAN = re.compile(r'(?:Span\s+[A-Za-z_]\w*\(|Span\(|record_span\()\s*"([^"]+)"')
FAILPOINT = re.compile(r'ISAAC_FAILPOINT(?:_FIRED)?\(\s*"([^"]+)"')


def strip_line_comments(text: str) -> str:
    return re.sub(r"//[^\n]*", "", text)


def scan_sources():
    """Returns ({key: kind}, {span}, {site}) used across src/."""
    keys: dict[str, str] = {}  # name -> 'counter' | 'gauge' | 'histogram'
    spans: set[str] = set()
    sites: set[str] = set()
    for path in sorted(SRC.rglob("*")):
        if path.suffix not in {".hpp", ".cpp"}:
            continue
        text = strip_line_comments(path.read_text())
        for macro, name in TM_MACRO.findall(text):
            keys[name] = "histogram" if macro == "RECORD" else "counter"
        for kind, name in TM_DIRECT.findall(text):
            keys[name] = kind
        for kind, prefix in TM_DYNAMIC.findall(text):
            keys[prefix + "*"] = kind
        for event in TM_TRANSITION.findall(text):
            keys[event] = "counter"
            keys[event + ".*"] = "counter"
        spans.update(SPAN.findall(text))
        sites.update(FAILPOINT.findall(text))
    return keys, spans, sites


# --- registry parsing -------------------------------------------------------


def parse_registry(marker: str) -> list[str]:
    """Entries of the fenced block following ``<!-- lint:<marker> -->``."""
    text = DESIGN.read_text()
    tag = f"<!-- lint:{marker} -->"
    at = text.find(tag)
    if at < 0:
        sys.exit(f"lint.py: DESIGN.md is missing the '{tag}' registry marker")
    block = re.search(r"```[^\n]*\n(.*?)```", text[at:], re.DOTALL)
    if not block:
        sys.exit(f"lint.py: no fenced block after '{tag}' in DESIGN.md")
    return [line.strip() for line in block.group(1).splitlines() if line.strip()]


def registry_match(name: str, registry: list[str]) -> bool:
    if name in registry:
        return True
    return any(name.startswith(entry[:-1]) for entry in registry if entry.endswith(".*"))


# --- checks -----------------------------------------------------------------


def main() -> int:
    errors: list[str] = []
    warnings: list[str] = []

    used_keys, used_spans, used_sites = scan_sources()
    reg_keys = parse_registry("telemetry-keys")
    reg_spans = parse_registry("span-names")
    reg_sites = parse_registry("failpoint-sites")

    for registry, label in ((reg_keys, "telemetry key"), (reg_spans, "span name"),
                            (reg_sites, "failpoint site")):
        for entry in registry:
            base = entry[:-2] if entry.endswith(".*") else entry
            if not NAME_RE.match(base):
                errors.append(f"malformed {label} in DESIGN.md registry: '{entry}'")

    for name, kind in sorted(used_keys.items()):
        base = name[:-2] if name.endswith(".*") else name
        if not NAME_RE.match(base):
            errors.append(f"malformed telemetry key in src/: '{name}'")
        if not registry_match(name, reg_keys):
            errors.append(f"telemetry key '{name}' used in src/ but not in the "
                          "DESIGN.md lint:telemetry-keys registry")
        if kind == "histogram" and not base.endswith(("_us", "_pct")):
            errors.append(f"histogram key '{name}' must end in _us (microseconds) "
                          "or _pct (percentage)")

    for name in sorted(used_spans):
        if not NAME_RE.match(name):
            errors.append(f"malformed span name in src/: '{name}'")
        if not registry_match(name, reg_spans):
            errors.append(f"span name '{name}' used in src/ but not in the "
                          "DESIGN.md lint:span-names registry")

    for name in sorted(used_sites):
        if not NAME_RE.match(name):
            errors.append(f"malformed failpoint site in src/: '{name}'")
        if name not in reg_sites:
            errors.append(f"failpoint site '{name}' used in src/ but not in the "
                          "DESIGN.md lint:failpoint-sites registry")

    # A registered failpoint that no code fires is a dead chaos hook: tests
    # armed on it silently stop injecting anything. Hard error.
    for entry in reg_sites:
        if entry not in used_sites:
            errors.append(f"failpoint site '{entry}' is registered in DESIGN.md "
                          "but no ISAAC_FAILPOINT site in src/ uses it")

    # Stale key/span entries are only warnings: purely dynamic names may be
    # invisible to this scanner, and a doc-ahead-of-code registry entry
    # shouldn't break the build.
    for entry in reg_keys:
        if entry not in used_keys and not entry.endswith(".*"):
            warnings.append(f"telemetry key '{entry}' is registered but not found in src/")
    for entry in reg_spans:
        if entry not in used_spans:
            warnings.append(f"span name '{entry}' is registered but not found in src/")

    for w in warnings:
        print(f"lint.py: warning: {w}")
    for e in errors:
        print(f"lint.py: error: {e}")
    if errors:
        print(f"lint.py: FAILED with {len(errors)} error(s)")
        return 1
    print(f"lint.py: OK — {len(used_keys)} telemetry keys, {len(used_spans)} spans, "
          f"{len(used_sites)} failpoint sites checked against DESIGN.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
