// Inspect the generated PTX: build a kernel for a given GEMM configuration,
// statically verify it, execute it through the interpreter on a small
// problem, and dump the PTX text — the artifact the paper's code generator
// hands to the CUDA driver.
//
// Build & run:   ./build/examples/inspect_ptx
#include <cstdio>
#include <vector>

#include "codegen/gemm_executor.hpp"
#include "codegen/gemm_ptx.hpp"
#include "common/rng.hpp"
#include "ptx/emitter.hpp"
#include "ptx/interpreter.hpp"
#include "ptx/verifier.hpp"

int main() {
  using namespace isaac;

  codegen::GemmShape shape;
  shape.m = 24;
  shape.n = 20;
  shape.k = 64;
  shape.trans_b = true;

  codegen::GemmTuning tuning;
  tuning.ms = 2;
  tuning.ns = 2;
  tuning.ml = 8;
  tuning.nl = 8;
  tuning.u = 4;
  tuning.kl = 2;  // shared-memory reduction epilogue
  tuning.kg = 2;  // atomics accumulation across the grid

  const ptx::Kernel kernel = codegen::generate_gemm_ptx(shape, tuning);
  const auto verdict = ptx::verify(kernel);
  std::printf("kernel %s: %zu instructions, %d B smem, verification: %s\n",
              kernel.name.c_str(), kernel.body.size(), kernel.smem_bytes,
              verdict.summary().c_str());

  // Execute through the interpreter and check against the naive reference.
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(shape.m * shape.k));
  std::vector<float> b(static_cast<std::size_t>(shape.n * shape.k));
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));

  ptx::GlobalMemory mem;
  const auto pa = mem.alloc(a.size() * 4);
  const auto pb = mem.alloc(b.size() * 4);
  const auto pc = mem.alloc(static_cast<std::size_t>(shape.m * shape.n) * 4);
  mem.write_f32(pa, a);
  mem.write_f32(pb, b);

  const auto result = ptx::run(kernel, codegen::gemm_launch_dims(shape, tuning),
                               codegen::gemm_params(shape, tuning, pa, pb, pc), mem);
  std::printf("interpreter: %s, %llu dynamic instructions, %llu FMAs, %llu barriers\n",
              result.ok ? "ok" : result.error.c_str(),
              static_cast<unsigned long long>(result.stats.instructions_executed),
              static_cast<unsigned long long>(result.stats.fma_executed),
              static_cast<unsigned long long>(result.stats.barriers));

  std::vector<float> c_ref(static_cast<std::size_t>(shape.m * shape.n), 0.0f);
  codegen::reference_gemm(shape, 1.0f, a.data(), shape.m, b.data(), shape.n, 0.0f,
                          c_ref.data(), shape.m);
  const auto c_ptx = mem.read_f32(pc, c_ref.size());
  double max_diff = 0;
  for (std::size_t i = 0; i < c_ref.size(); ++i) {
    max_diff = std::max(max_diff, static_cast<double>(std::abs(c_ptx[i] - c_ref[i])));
  }
  std::printf("max |PTX - reference| = %.2e\n\n", max_diff);

  std::printf("---- generated PTX (first 60 lines) ----\n");
  const std::string text = ptx::emit(kernel);
  int lines = 0;
  for (std::size_t i = 0; i < text.size() && lines < 60; ++i) {
    std::putchar(text[i]);
    if (text[i] == '\n') ++lines;
  }
  std::printf("... (%zu bytes total)\n", text.size());
  return 0;
}
