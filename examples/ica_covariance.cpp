// Independent Component Analysis front end: whitening needs the channel
// covariance C = X · X^T / T for a few dozen channels over tens of thousands
// of time samples — the deep-reduction GEMM regime (M = N = channels << K)
// where the paper reports order-of-magnitude wins over mis-selected vendor
// kernels (§7.3 ICA).
//
// Build & run:   ./build/examples/ica_covariance
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "core/isaac.hpp"
#include "gpusim/device.hpp"

int main() {
  using namespace isaac;

  core::ContextOptions options;
  options.search.max_candidates = 30000;
  options.search.budget = 100;
  core::Context ctx(gpusim::tesla_p100(), options);
  std::printf("training the input-aware model...\n");
  ctx.train_model(/*samples=*/4000, /*epochs=*/10);

  const std::int64_t channels = 64;
  const std::int64_t samples = 20000;  // EEG-style recording length

  // X is channels x samples, column-major. Two correlated source mixtures.
  Rng rng(42);
  std::vector<float> x(static_cast<std::size_t>(channels * samples));
  for (std::int64_t t = 0; t < samples; ++t) {
    const float s1 = static_cast<float>(std::sin(0.05 * static_cast<double>(t)));
    const float s2 = static_cast<float>(rng.normal(0.0, 1.0));
    for (std::int64_t c = 0; c < channels; ++c) {
      const float mix = static_cast<float>(c + 1) / static_cast<float>(channels);
      x[static_cast<std::size_t>(c + t * channels)] =
          mix * s1 + (1.0f - mix) * s2 + static_cast<float>(rng.normal(0.0, 0.05));
    }
  }

  // Covariance via the tuned deep-reduction GEMM: C = (1/T) X X^T.
  // Shape (M, N, K) = (channels, channels, samples), layout (N, T).
  codegen::GemmShape shape;
  shape.m = channels;
  shape.n = channels;
  shape.k = samples;
  shape.trans_b = true;

  std::vector<float> cov(static_cast<std::size_t>(channels * channels), 0.0f);
  const auto info = ctx.gemm(shape, 1.0f / static_cast<float>(samples), x.data(), channels,
                             x.data(), channels, 0.0f, cov.data(), channels);

  std::printf("\ncovariance GEMM (%lldx%lld over K=%lld):\n", static_cast<long long>(channels),
              static_cast<long long>(channels), static_cast<long long>(samples));
  std::printf("selected kernel : %s\n", info.tuning.to_string().c_str());
  std::printf("  (note KL/KG — the tuner splits the deep reduction, the technique the\n"
              "   paper finds missing from vendor heuristics in exactly this regime)\n");
  std::printf("simulated time  : %.1f us  (%.2f TFLOPS)\n", info.simulated_seconds * 1e6,
              info.gflops / 1000.0);

  // Sanity: the diagonal dominates and the matrix is symmetric.
  double max_asym = 0.0;
  for (std::int64_t i = 0; i < channels; ++i) {
    for (std::int64_t j = 0; j < channels; ++j) {
      max_asym = std::max(
          max_asym, static_cast<double>(std::abs(
                        cov[static_cast<std::size_t>(i + j * channels)] -
                        cov[static_cast<std::size_t>(j + i * channels)])));
    }
  }
  std::printf("covariance diag[0] = %.4f, max |C - C^T| = %.2e\n",
              cov[0], max_asym);
  return 0;
}
