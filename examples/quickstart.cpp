// Quickstart: the whole ISAAC pipeline in one file.
//
//   1. create a Context bound to a (simulated) device,
//   2. train the input-aware performance model (data generation + MLP),
//   3. call isaac::gemm — the runtime infers the best kernel for *this*
//      input shape, caches it, executes it, and reports the device timing.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/isaac.hpp"
#include "gpusim/device.hpp"

int main() {
  using namespace isaac;

  // 1. A context on the Tesla P100 model. On real hardware this step would
  //    bind a CUDA device; here it binds the calibrated simulator.
  core::ContextOptions options;
  options.search.max_candidates = 30000;  // subsample the model ranking for speed
  options.search.budget = 100;
  core::Context ctx(gpusim::tesla_p100(), options);

  // 2. Offline auto-tuning: benchmark a few thousand sampled kernels and fit
  //    the regression model (the paper spends a few hours here on real
  //    silicon; the simulator makes it seconds).
  std::printf("training the input-aware model...\n");
  ctx.train_model(/*samples=*/4000, /*epochs=*/10);

  // 3. A skinny DeepBench-style multiplication: C = A * B with
  //    M = K = 2560 and batch N = 32 — exactly the regime where static
  //    libraries lose to input-aware selection.
  codegen::GemmShape shape;
  shape.m = 2560;
  shape.n = 32;
  shape.k = 2560;

  std::vector<float> a(static_cast<std::size_t>(shape.m * shape.k), 0.5f);
  std::vector<float> b(static_cast<std::size_t>(shape.k * shape.n), 0.25f);
  std::vector<float> c(static_cast<std::size_t>(shape.m * shape.n), 0.0f);

  const auto info =
      ctx.gemm(shape, 1.0f, a.data(), shape.m, b.data(), shape.k, 0.0f, c.data(), shape.m);

  std::printf("\nselected kernel : %s\n", info.tuning.to_string().c_str());
  std::printf("simulated time  : %.1f us\n", info.simulated_seconds * 1e6);
  std::printf("performance     : %.2f TFLOPS\n", info.gflops / 1000.0);
  std::printf("from cache      : %s\n", info.from_cache ? "yes" : "no");
  std::printf("C[0]            : %.3f (expect %lld * 0.5 * 0.25 = %.3f)\n", c[0],
              static_cast<long long>(shape.k), 0.5 * 0.25 * static_cast<double>(shape.k));

  // A second call with the same shape hits the kernel cache: no re-tuning.
  const auto again =
      ctx.gemm(shape, 1.0f, a.data(), shape.m, b.data(), shape.k, 0.0f, c.data(), shape.m);
  std::printf("second call     : from cache = %s\n", again.from_cache ? "yes" : "no");
  return 0;
}
