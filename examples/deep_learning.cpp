// Deep-learning workload: tune the GEMMs of a DeepBench-style fully
// connected layer (forward + weight-gradient passes) across batch sizes.
//
// Demonstrates the paper's motivating observation: the best kernel changes
// with the batch size N — small batches want narrow N tiles and reduction
// splitting, large batches want wide tiles — so a single static kernel
// cannot serve them all.
//
// Build & run:   ./build/examples/deep_learning
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/isaac.hpp"
#include "gpusim/device.hpp"

int main() {
  using namespace isaac;

  core::ContextOptions options;
  options.search.max_candidates = 30000;
  options.search.budget = 100;
  core::Context ctx(gpusim::tesla_p100(), options);
  std::printf("training the input-aware model...\n");
  ctx.train_model(/*samples=*/4000, /*epochs=*/10);

  const std::int64_t layer = 2560;  // DeepBench hidden-layer width
  Table table({"pass", "batch N", "selected kernel", "TFLOPS"});

  for (std::int64_t batch : {16, 32, 64, 128}) {
    // Forward: Y = W * X   with W [layer x layer], X [layer x batch] — (N,N).
    codegen::GemmShape fwd;
    fwd.m = layer;
    fwd.n = batch;
    fwd.k = layer;

    // Weight gradient: dW = dY * X^T — a (N,T)-layout product; here we use
    // the paper's backward benchmark layout (T,N).
    codegen::GemmShape bwd = fwd;
    bwd.trans_a = true;

    Rng rng(static_cast<std::uint64_t>(batch));
    std::vector<float> w(static_cast<std::size_t>(layer * layer));
    std::vector<float> x(static_cast<std::size_t>(layer * batch));
    std::vector<float> y(static_cast<std::size_t>(layer * batch));
    for (auto& v : w) v = static_cast<float>(rng.uniform(-0.1, 0.1));
    for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));

    const auto f = ctx.gemm(fwd, 1.0f, w.data(), layer, x.data(), layer, 0.0f, y.data(), layer);
    table.add_row({"forward", std::to_string(batch), f.tuning.to_string(),
                   Table::fmt_double(f.gflops / 1000.0, 2)});

    const auto b = ctx.gemm(bwd, 1.0f, w.data(), layer, x.data(), layer, 0.0f, y.data(), layer);
    table.add_row({"backward", std::to_string(batch), b.tuning.to_string(),
                   Table::fmt_double(b.gflops / 1000.0, 2)});
  }

  table.print(std::cout);
  std::printf("\nNote how NL tracks the batch size and how the backward (transposed)\n"
              "layouts lean on reduction splitting — no single kernel serves all rows.\n");
  return 0;
}
