// Figure 9: SCONV performance on the GTX 980 TI — ISAAC vs cuDNN over
// Table 5's Conv1-14. Paper headline shapes: modest gains on cuDNN's home
// turf (large NPQ, small K), 1.5-2x on the deep reductions Conv7/Conv8,
// ~10% when NPQ is small but RS > 1 (Conv13).
#include "conv_figure.hpp"
#include "gpusim/device.hpp"

int main(int argc, char** argv) {
  using namespace isaac::bench;
  auto opts = parse_conv_flags(argc, argv, "bench_fig9_sconv_maxwell",
                               "Figure 9: SCONV on GTX 980 TI (ISAAC vs cuDNN)");
  opts.title = "Figure 9 — SCONV performance on the GTX 980 TI";
  opts.device = &isaac::gpusim::gtx980ti();
  opts.tasks = table5_conv_tasks();
  return run_conv_figure(opts);
}
