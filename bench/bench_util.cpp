#include "bench_util.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.hpp"
#include "mlp/regressor.hpp"
#include "tuning/collector.hpp"

namespace isaac::bench {

namespace {

codegen::GemmShape gemm(std::int64_t m, std::int64_t n, std::int64_t k, bool ta, bool tb,
                        gpusim::DataType dt) {
  codegen::GemmShape s;
  s.m = m;
  s.n = n;
  s.k = k;
  s.trans_a = ta;
  s.trans_b = tb;
  s.dtype = dt;
  return s;
}

}  // namespace

std::vector<GemmTask> table4_gemm_tasks(gpusim::DataType dt_square, gpusim::DataType dt_db,
                                        gpusim::DataType dt_ica, gpusim::DataType dt_svd) {
  std::vector<GemmTask> tasks;
  // LINPACK: square, (N, T).
  for (std::int64_t s : {512, 1024, 2048}) {
    tasks.push_back({"LINPACK", strings::format("M=N=K=%lld", static_cast<long long>(s)),
                     gemm(s, s, s, false, true, dt_square)});
  }
  // DeepBench forward: (N, N), M=K=2560, N sweeps the batch size.
  for (std::int64_t n : {16, 32, 64, 128}) {
    tasks.push_back({"DeepBench [F]", strings::format("N=%lld", static_cast<long long>(n)),
                     gemm(2560, n, 2560, false, false, dt_db)});
  }
  // DeepBench backward: (T, N).
  for (std::int64_t n : {16, 32, 64, 128}) {
    tasks.push_back({"DeepBench [B]", strings::format("N=%lld", static_cast<long long>(n)),
                     gemm(2560, n, 2560, true, false, dt_db)});
  }
  // ICA: M=N=channels, K=60000, (N, T). Table 4 lists 32/64/256 channels.
  for (std::int64_t c : {32, 64, 256}) {
    tasks.push_back({"ICA", strings::format("M=N=%lld", static_cast<long long>(c)),
                     gemm(c, c, 60000, false, true, dt_ica)});
  }
  // Blocked SVD: K=32 panels, (N, T).
  for (std::int64_t s : {896, 2048, 4096}) {
    tasks.push_back({"Blocked SVD", strings::format("M=N=%lld", static_cast<long long>(s)),
                     gemm(s, s, 32, false, true, dt_svd)});
  }
  return tasks;
}

std::vector<ConvTask> table5_conv_tasks(gpusim::DataType dtype) {
  using S = codegen::ConvShape;
  struct Row {
    const char* group;
    int n, p, q, k, c, r, s;
  };
  // Exactly Table 5 of the paper.
  const Row rows[] = {
      {"DeepSpeech", 16, 79, 341, 32, 1, 5, 20},
      {"DeepSpeech", 16, 38, 166, 32, 32, 5, 10},
      {"OCR", 16, 24, 240, 32, 16, 3, 3},
      {"OCR", 16, 12, 120, 64, 32, 3, 3},
      {"Face Recognition", 8, 54, 54, 64, 64, 3, 3},
      {"Face Recognition", 8, 27, 27, 128, 128, 3, 3},
      {"Face Recognition", 16, 14, 14, 48, 512, 5, 5},
      {"Face Recognition", 16, 7, 7, 128, 832, 5, 5},
      {"Vision", 8, 112, 112, 128, 64, 3, 3},
      {"Vision", 8, 56, 56, 256, 128, 3, 3},
      {"Speaker ID", 16, 128, 39, 174, 64, 5, 5},
      {"Speaker ID", 16, 256, 19, 87, 128, 5, 5},
      {"ResNET", 16, 7, 7, 512, 512, 3, 3},
      {"ResNET", 16, 7, 7, 2048, 1024, 1, 1},
  };
  std::vector<ConvTask> tasks;
  int index = 1;
  for (const Row& r : rows) {
    S shape = S::from_npq(r.n, r.p, r.q, r.k, r.c, r.r, r.s, dtype);
    tasks.push_back({r.group, strings::format("Conv%d", index++), shape});
  }
  return tasks;
}

namespace {

std::string cache_path(const char* kind, const gpusim::DeviceDescriptor& dev,
                       const ModelOptions& opts) {
  std::string hidden;
  for (int h : opts.hidden) hidden += strings::format("-%d", h);
  std::string dev_name = dev.name;
  for (char& c : dev_name) {
    if (c == ' ' || c == '(' || c == ')') c = '_';
  }
  return strings::format("isaac_bench_cache/%s_%s_s%zu_e%d%s.model", kind, dev_name.c_str(),
                         opts.samples, opts.epochs, hidden.c_str());
}

template <typename CollectFn>
mlp::Regressor model_impl(const char* kind, const gpusim::DeviceDescriptor& dev,
                          const ModelOptions& opts, const CollectFn& collect) {
  const std::string path = cache_path(kind, dev, opts);
  {
    std::ifstream is(path);
    if (is) {
      try {
        return mlp::Regressor::load(is);
      } catch (const std::exception&) {
        // fall through to retrain
      }
    }
  }

  std::fprintf(stderr, "[bench] training %s model for %s (%zu samples, %d epochs)...\n", kind,
               dev.name.c_str(), opts.samples, opts.epochs);
  gpusim::Simulator sim(dev, 0.03, opts.seed);
  tuning::CollectorConfig cfg;
  cfg.num_samples = opts.samples;
  cfg.seed = opts.seed;
  const auto report = collect(sim, cfg);

  mlp::TrainConfig tc;
  tc.net.hidden = opts.hidden;
  tc.epochs = opts.epochs;
  tc.seed = opts.seed;
  mlp::Regressor model = mlp::train(report.dataset, tc);

  std::error_code ec;
  std::filesystem::create_directories("isaac_bench_cache", ec);
  std::ofstream os(path);
  if (os) model.save(os);
  return model;
}

}  // namespace

mlp::Regressor gemm_model(const gpusim::DeviceDescriptor& dev, const ModelOptions& opts) {
  return model_impl("gemm", dev, opts, [](const gpusim::Simulator& sim,
                                          const tuning::CollectorConfig& cfg) {
    return tuning::collect_gemm(sim, cfg);
  });
}

mlp::Regressor conv_model(const gpusim::DeviceDescriptor& dev, const ModelOptions& opts) {
  return model_impl("conv", dev, opts, [](const gpusim::Simulator& sim,
                                          const tuning::CollectorConfig& cfg) {
    return tuning::collect_conv(sim, cfg);
  });
}

search::SearchConfig bench_inference(bool full) {
  search::SearchConfig cfg;
  // Re-timing candidates on the simulated device is cheap (microseconds per
  // launch), so the benches re-evaluate generously — the paper's "100 (or
  // more) fastest configurations".
  cfg.budget = full ? 400 : 200;
  cfg.keep_top = cfg.budget;
  cfg.reeval_reps = 5;
  cfg.max_candidates = full ? 0 : 60000;
  return cfg;
}

std::string tflops(double gflops) {
  return strings::format("%6.2f", gflops / 1000.0);
}

void banner(const std::string& title, const gpusim::DeviceDescriptor& dev) {
  std::printf("=======================================================================\n");
  std::printf("  %s\n", title.c_str());
  std::printf("  device: %s (%s, %.1f SP TFLOPS peak, %.0f GB/s)\n", dev.name.c_str(),
              dev.chip.c_str(), dev.peak_sp_tflops, dev.dram_bandwidth_gbs);
  std::printf("=======================================================================\n");
}

}  // namespace isaac::bench
