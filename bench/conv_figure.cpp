#include "conv_figure.hpp"

#include <cstdio>
#include <iostream>
#include <stdexcept>

#include "baselines/cudnn_sim.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/inference.hpp"

namespace isaac::bench {

ConvFigureOptions parse_conv_flags(int argc, char** argv, const std::string& program,
                                   const std::string& description) {
  CliParser cli(program, description);
  cli.add_flag("full", "paper-scale run: larger candidate budget", false);
  cli.add_int("seed", "simulation / training seed", 0x15AAC);
  ConvFigureOptions opts;
  if (!cli.parse(argc, argv)) {
    opts.device = nullptr;
    return opts;
  }
  opts.full = cli.get_flag("full");
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  return opts;
}

int run_conv_figure(const ConvFigureOptions& options) {
  if (options.device == nullptr) return 0;
  const auto& dev = *options.device;
  banner(options.title, dev);

  ModelOptions model_opts;
  model_opts.seed = options.seed;
  const auto model = conv_model(dev, model_opts);
  const gpusim::Simulator sim(dev, 0.03, options.seed);
  const baselines::CudnnSim cudnn(dev);
  auto inference = bench_inference(options.full);
  inference.max_candidates = options.full ? 200000 : 20000;

  Table table({"group", "task", "NPQ", "CRS", "ISAAC TFLOPS", "cuDNN TFLOPS", "ISAAC/cuDNN",
               "ISAAC kernel"});

  for (const auto& task : options.tasks) {
    core::ConvTuneResult isaac_result;
    try {
      isaac_result = core::tune_conv(task.shape, model, sim, inference);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[bench] %s: tuning failed: %s\n", task.label.c_str(), e.what());
      continue;
    }
    const auto heuristic = cudnn.run_heuristic(sim, task.shape);
    const double isaac_gf = isaac_result.best.measured_gflops;
    const double cudnn_gf = heuristic.valid ? heuristic.gflops : 0.0;

    table.add_row({task.group, task.label, std::to_string(task.shape.npq()),
                   std::to_string(task.shape.crs()), tflops(isaac_gf), tflops(cudnn_gf),
                   cudnn_gf > 0 ? Table::fmt_double(isaac_gf / cudnn_gf, 2) + "x" : "-",
                   isaac_result.best.tuning.to_string()});
  }

  table.print(std::cout);
  std::printf("\nNotes: simulated device; cuDNN column = IMPLICIT_PRECOMP_GEMM heuristics.\n");
  return 0;
}

}  // namespace isaac::bench
