// §8.3 ablation: why PTX. Predicated bounds checking costs ~2% on a kernel
// with ragged tiles, where CUDA-C style branchy checks cost 15-20% — the
// reason the first CUDA-C/OpenCL iteration of ISAAC was deprecated. Padding
// is the third alternative: clean inner loops, but inflated work + copies.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"

int main(int argc, char** argv) {
  using namespace isaac;
  CliParser cli("bench_sec83_predication",
                "Section 8.3: bounds-checking strategy overhead (predicated/branchy/padded)");
  cli.add_int("seed", "seed", 0x83);
  if (!cli.parse(argc, argv)) return 0;

  const auto& dev = gpusim::tesla_p100();
  bench::banner("Section 8.3 — Advantages of PTX: bounds-checking overhead", dev);

  const gpusim::Simulator sim(dev, 0.0, static_cast<std::uint64_t>(cli.get_int("seed")));

  // Ragged shapes across the evaluation regimes (tiles never divide exactly).
  struct Case {
    const char* name;
    std::int64_t m, n, k;
  };
  const std::vector<Case> cases = {
      {"near-LINPACK", 2000, 2000, 2000},
      {"near-DeepBench", 2500, 30, 2500},
      {"tall-skinny", 4000, 100, 500},
  };

  codegen::GemmTuning tuning;
  tuning.ms = 8;
  tuning.ns = 8;
  tuning.ml = 64;
  tuning.nl = 64;
  tuning.u = 8;
  tuning.vec = 4;

  Table table({"shape", "predicated (PTX)", "branchy (CUDA-C)", "padded",
               "branchy overhead", "paper branchy", "padded overhead"});

  for (const auto& c : cases) {
    codegen::GemmShape shape;
    shape.m = c.m;
    shape.n = c.n;
    shape.k = c.k;
    shape.trans_b = true;

    auto run = [&](gpusim::BoundsMode mode) {
      codegen::GemmTuning t = tuning;
      t.bounds = mode;
      const auto profile = codegen::analyze(shape, t, dev);
      return sim.evaluate(profile).seconds;
    };
    const double pred = run(gpusim::BoundsMode::Predicated);
    const double branchy = run(gpusim::BoundsMode::Branchy);
    const double padded = run(gpusim::BoundsMode::Padded);

    auto ms = [](double s) { return Table::fmt_double(s * 1e3, 3) + " ms"; };
    auto pct = [&](double x) { return Table::fmt_double(100.0 * (x / pred - 1.0), 1) + "%"; };
    table.add_row({c.name, ms(pred), ms(branchy), ms(padded), pct(branchy), "15-20%",
                   pct(padded)});
  }

  table.print(std::cout);
  std::printf("\nShape to match: predication is the cheapest edge-handling strategy;\n"
              "branchy bounds checks cost an order of magnitude more than predication's\n"
              "~2%% (§8.3: switching to PTX reduced the overhead from 15-20%% to 2%%).\n");
  return 0;
}
