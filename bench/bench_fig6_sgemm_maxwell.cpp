// Figure 6: SGEMM performance on the GTX 980 TI — ISAAC vs cuBLAS heuristics
// over the Table 4 tasks. Paper headline shapes: ~25% win at 512^3, parity on
// large squares, ~80% win on DeepBench N=16, order-of-magnitude win on ICA
// (heuristics mis-select), ~10% on Blocked SVD.
#include "gemm_figure.hpp"
#include "gpusim/device.hpp"

int main(int argc, char** argv) {
  using namespace isaac::bench;
  auto opts = parse_figure_flags(argc, argv, "bench_fig6_sgemm_maxwell",
                                 "Figure 6: SGEMM on GTX 980 TI (ISAAC vs cuBLAS)");
  opts.title = "Figure 6 — SGEMM performance on the GTX 980 TI";
  opts.device = &isaac::gpusim::gtx980ti();
  opts.tasks = table4_gemm_tasks();
  opts.show_best_kernel = false;
  return run_gemm_figure(opts);
}
