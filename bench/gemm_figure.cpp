#include "gemm_figure.hpp"

#include <cstdio>
#include <iostream>
#include <stdexcept>

#include "baselines/cublas_sim.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/inference.hpp"

namespace isaac::bench {

GemmFigureOptions parse_figure_flags(int argc, char** argv, const std::string& program,
                                     const std::string& description) {
  CliParser cli(program, description);
  cli.add_flag("full", "paper-scale run: no candidate subsampling, top-100 re-timing", false);
  cli.add_int("seed", "simulation / training seed", 0x15AAC);
  GemmFigureOptions opts;
  if (!cli.parse(argc, argv)) {
    opts.device = nullptr;  // caller exits
    return opts;
  }
  opts.full = cli.get_flag("full");
  opts.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  return opts;
}

int run_gemm_figure(const GemmFigureOptions& options) {
  if (options.device == nullptr) return 0;
  const auto& dev = *options.device;
  banner(options.title, dev);

  ModelOptions model_opts;
  model_opts.seed = options.seed;
  const auto model = gemm_model(dev, model_opts);
  const gpusim::Simulator sim(dev, 0.03, options.seed);
  const baselines::CublasSim cublas(dev);
  const auto inference = bench_inference(options.full);

  std::vector<std::string> headers{"group", "task", "dtype", "ISAAC TFLOPS",
                                   "cuBLAS TFLOPS"};
  if (options.show_best_kernel) headers.push_back("Best Kernel TFLOPS");
  headers.push_back("ISAAC/cuBLAS");
  headers.push_back("ISAAC kernel");
  Table table(std::move(headers));

  for (const auto& task : options.tasks) {
    core::GemmTuneResult isaac_result;
    try {
      isaac_result = core::tune_gemm(task.shape, model, sim, inference);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[bench] %s: tuning failed: %s\n", task.label.c_str(), e.what());
      continue;
    }
    const auto heuristic = cublas.run_heuristic(sim, task.shape);
    const double isaac_gf = isaac_result.best.measured_gflops;
    const double cublas_gf = heuristic.valid ? heuristic.gflops : 0.0;

    std::vector<std::string> row{task.group, task.label, gpusim::dtype_name(task.shape.dtype),
                                 tflops(isaac_gf), tflops(cublas_gf)};
    if (options.show_best_kernel) {
      const auto best = cublas.run_best_kernel(sim, task.shape);
      row.push_back(tflops(best.valid ? best.gflops : 0.0));
    }
    row.push_back(cublas_gf > 0 ? Table::fmt_double(isaac_gf / cublas_gf, 2) + "x" : "-");
    row.push_back(isaac_result.best.tuning.to_string());
    table.add_row(std::move(row));
  }

  table.print(std::cout);
  std::printf("\nNotes: simulated device; compare shapes (who wins, by what factor), not\n"
              "absolute TFLOPS. cuBLAS column = handcrafted-heuristics path%s.\n",
              options.show_best_kernel ? "; Best Kernel = cublasGemmEx bypass" : "");
  return 0;
}

}  // namespace isaac::bench
