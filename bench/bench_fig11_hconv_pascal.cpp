// Figure 11: HCONV (fp16) performance on the Tesla P100. Paper headline
// shape: ISAAC almost consistently faster — it emits fp16x2 tiles across the
// whole input space while cuDNN's v6 IMPLICIT_PRECOMP_GEMM kernels do not.
#include "conv_figure.hpp"
#include "gpusim/device.hpp"

int main(int argc, char** argv) {
  using namespace isaac::bench;
  auto opts = parse_conv_flags(argc, argv, "bench_fig11_hconv_pascal",
                               "Figure 11: HCONV on Tesla P100 (ISAAC vs cuDNN)");
  opts.title = "Figure 11 — HCONV performance on the Tesla P100";
  opts.device = &isaac::gpusim::tesla_p100();
  opts.tasks = table5_conv_tasks(isaac::gpusim::DataType::F16);
  return run_conv_figure(opts);
}
