// Table 6: parameterization choices of ISAAC for the named evaluation
// problems (on the P100, as in §8.2). The paper's qualitative findings to
// match: (1) smaller tiles for smaller problems, (2) deep reductions always
// split (K_L vs K_G traded off), (3) U drops when cache efficiency stops
// mattering (Blocked SVD).
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/inference.hpp"
#include "gpusim/device.hpp"

int main(int argc, char** argv) {
  using namespace isaac;
  CliParser cli("bench_table6_choices", "Table 6: ISAAC's parameterization choices");
  cli.add_flag("full", "exhaustive candidate enumeration", false);
  cli.add_int("seed", "seed", 0x15AAC);
  if (!cli.parse(argc, argv)) return 0;

  const auto& dev = gpusim::tesla_p100();
  bench::banner("Table 6 — Parameterization choices of ISAAC", dev);

  bench::ModelOptions mo;
  mo.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto model = bench::gemm_model(dev, mo);
  const gpusim::Simulator sim(dev, 0.03, mo.seed);
  const auto inference = bench::bench_inference(cli.get_flag("full"));

  struct Problem {
    const char* name;
    std::int64_t m, n, k;
    bool ta, tb;
    const char* paper;  // "Ms Ns ML NL U Ks KL KG" from Table 6
  };
  const std::vector<Problem> problems = {
      {"LINPACK (512)", 512, 512, 512, false, true, "2 8 32 32 8 1 1 1"},
      {"LINPACK (2048)", 2048, 2048, 2048, false, true, "8 8 64 64 8 1 1 1"},
      {"DeepBench-F (16)", 2560, 16, 2560, false, false, "2 4 64 16 16 1 1 4"},
      {"DeepBench-F (128)", 2560, 128, 2560, false, false, "4 4 64 32 8 1 1 2"},
      {"DeepBench-B (16)", 2560, 16, 2560, true, false, "4 2 16 16 16 1 8 1"},
      {"DeepBench-B (128)", 2560, 128, 2560, true, false, "4 4 64 64 8 1 1 4"},
      {"ICA (32)", 32, 32, 60000, false, true, "2 4 32 32 8 1 4 32"},
      {"ICA (256)", 256, 256, 60000, false, true, "4 4 32 64 8 1 1 8"},
      {"LAPACK (896)", 896, 896, 32, false, true, "8 4 64 64 8 1 1 1"},
      {"LAPACK (4096)", 4096, 4096, 32, false, true, "8 16 64 128 4 1 1 1"},
  };

  Table table({"Problem", "Ms", "Ns", "ML", "NL", "U", "Ks", "KL", "KG",
               "paper (Ms Ns ML NL U Ks KL KG)"});
  for (const auto& p : problems) {
    codegen::GemmShape shape;
    shape.m = p.m;
    shape.n = p.n;
    shape.k = p.k;
    shape.trans_a = p.ta;
    shape.trans_b = p.tb;
    try {
      const auto result = core::tune_gemm(shape, model, sim, inference);
      const auto& t = result.best.tuning;
      table.add_row({p.name, std::to_string(t.ms), std::to_string(t.ns), std::to_string(t.ml),
                     std::to_string(t.nl), std::to_string(t.u), std::to_string(t.ks),
                     std::to_string(t.kl), std::to_string(t.kg), p.paper});
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[bench] %s failed: %s\n", p.name, e.what());
    }
  }
  table.print(std::cout);
  std::printf("\nShapes to match: smaller tiles for smaller problems; deep-K problems\n"
              "(DeepBench, ICA) always split the reduction; LINPACK/LAPACK never do.\n");
  return 0;
}
