// Shared driver for the SGEMM/H-DGEMM figures (Fig. 6, 7, 8): runs every
// Table 4 task through ISAAC's runtime inference and the simulated cuBLAS
// (heuristics + optional Best-Kernel bypass) and prints the figure's series.
#pragma once

#include <string>
#include <vector>

#include "bench_util.hpp"

namespace isaac::bench {

struct GemmFigureOptions {
  std::string title;
  const gpusim::DeviceDescriptor* device = nullptr;
  std::vector<GemmTask> tasks;
  bool show_best_kernel = false;  // Fig. 7/8 include the cublasGemmEx bypass
  bool full = false;
  std::uint64_t seed = 0x15AAC;
};

/// Runs the figure; returns process exit code.
int run_gemm_figure(const GemmFigureOptions& options);

/// Parse the standard figure flags (--full, --seed).
GemmFigureOptions parse_figure_flags(int argc, char** argv, const std::string& program,
                                     const std::string& description);

}  // namespace isaac::bench
