// Table 3: test-platform hardware. Prints the device descriptors the
// simulator is built from, row-for-row against the paper's table.
#include <iostream>

#include "common/table.hpp"
#include "gpusim/device.hpp"

int main() {
  using namespace isaac;
  const auto& m = gpusim::gtx980ti();
  const auto& p = gpusim::tesla_p100();

  std::cout << "Table 3 — Test platforms hardware\n\n";
  Table table({"", "Maxwell", "Pascal"});
  table.add_row({"GPU", m.name, p.name});
  table.add_row({"Market Segment", m.market_segment, p.market_segment});
  table.add_row({"Micro-architecture", m.chip, p.chip});
  table.add_row({"CUDA cores", std::to_string(m.num_sms * m.cuda_cores_per_sm),
                 std::to_string(p.num_sms * p.cuda_cores_per_sm)});
  table.add_row({"Boost frequency", Table::fmt_double(m.boost_clock_ghz * 1000, 0) + " MHz",
                 Table::fmt_double(p.boost_clock_ghz * 1000, 0) + " MHz"});
  table.add_row({"Processing Power", Table::fmt_double(m.peak_sp_tflops, 1) + " TFLOPS",
                 Table::fmt_double(p.peak_sp_tflops, 1) + " TFLOPS"});
  table.add_row({"Memory quantity", Table::fmt_double(m.memory_gb, 0) + " GB",
                 Table::fmt_double(p.memory_gb, 0) + " GB"});
  table.add_row({"Memory Type", m.memory_type, p.memory_type});
  table.add_row({"Memory Bandwidth", Table::fmt_double(m.dram_bandwidth_gbs, 0) + " GB/s",
                 Table::fmt_double(p.dram_bandwidth_gbs, 0) + " GB/s"});
  table.add_row({"TDP", std::to_string(m.tdp_watts) + "W", std::to_string(p.tdp_watts) + "W"});
  table.print(std::cout);

  std::cout << "\nSimulator micro-architectural parameters (not in the paper's table):\n\n";
  Table micro({"", "Maxwell", "Pascal"});
  micro.add_row({"SMs", std::to_string(m.num_sms), std::to_string(p.num_sms)});
  micro.add_row({"smem/SM", std::to_string(m.smem_per_sm_bytes / 1024) + " KiB",
                 std::to_string(p.smem_per_sm_bytes / 1024) + " KiB"});
  micro.add_row({"registers/SM", std::to_string(m.registers_per_sm),
                 std::to_string(p.registers_per_sm)});
  micro.add_row({"fp16x2 rate", Table::fmt_double(m.fp16x2_ratio, 2) + "x",
                 Table::fmt_double(p.fp16x2_ratio, 2) + "x"});
  micro.add_row({"fp64 rate", "1/32", "1/2"});
  micro.add_row({"mem latency", Table::fmt_double(m.mem_latency_cycles, 0) + " cyc",
                 Table::fmt_double(p.mem_latency_cycles, 0) + " cyc"});
  micro.print(std::cout);
  return 0;
}
