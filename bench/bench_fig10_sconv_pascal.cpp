// Figure 10: SCONV performance on the Tesla P100. Paper headline shapes:
// larger gains than on Maxwell (cuDNN's kernels/heuristics are tailored to
// Maxwell) — >5x on Conv8, ~70% on Conv13.
#include "conv_figure.hpp"
#include "gpusim/device.hpp"

int main(int argc, char** argv) {
  using namespace isaac::bench;
  auto opts = parse_conv_flags(argc, argv, "bench_fig10_sconv_pascal",
                               "Figure 10: SCONV on Tesla P100 (ISAAC vs cuDNN)");
  opts.title = "Figure 10 — SCONV performance on the Tesla P100";
  opts.device = &isaac::gpusim::tesla_p100();
  opts.tasks = table5_conv_tasks();
  return run_conv_figure(opts);
}
