// §8.1 analysis table: ISAAC vs cuBLAS's best kernel on (M,N,K) =
// (2560, 32, 2560), fp32, Tesla P100 — the deep-dive that explains *why*
// input-aware tuning wins on skinny DeepBench batches.
//
//                 paper:   ISAAC     cuBLAS
//     TFLOPS              3.73      2.56
//     ML                  64        128
//     NL                  32        64
//     Shared Memory       12.25kB   12.25kB
//     Registers           72        120
//     Occupancy           17%       10%
//     L2 hit rate         32%       24%
//
// Shapes to match: ISAAC picks smaller tiles → fewer registers/smem → higher
// occupancy → better latency hiding, and higher L2 hit rate; cuBLAS's 64-wide
// N tile assigns threads to a non-existent part of C.
#include <cstdio>
#include <iostream>

#include "baselines/cublas_sim.hpp"
#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/inference.hpp"
#include "gpusim/device.hpp"

int main(int argc, char** argv) {
  using namespace isaac;
  CliParser cli("bench_sec81_analysis", "Section 8.1: DeepBench (2560,32,2560) deep dive");
  cli.add_flag("full", "exhaustive candidate enumeration", false);
  cli.add_int("seed", "seed", 0x15AAC);
  if (!cli.parse(argc, argv)) return 0;

  const auto& dev = gpusim::tesla_p100();
  bench::banner("Section 8.1 — ISAAC vs cuBLAS best kernel at (2560, 32, 2560)", dev);

  codegen::GemmShape shape;
  shape.m = 2560;
  shape.n = 32;
  shape.k = 2560;

  bench::ModelOptions mo;
  mo.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto model = bench::gemm_model(dev, mo);
  const gpusim::Simulator sim(dev, 0.03, mo.seed);

  const auto isaac_result =
      core::tune_gemm(shape, model, sim, bench::bench_inference(cli.get_flag("full")));
  const auto& it = isaac_result.best.tuning;
  const auto isaac_profile = codegen::analyze(shape, it, dev);
  const auto isaac_perf = sim.evaluate(isaac_profile);

  // The paper's comparator is cuBLAS's best *DeepBench-class* kernel — the
  // 128x64 tile with reduction splitting (its Table: ML=128, NL=64, split 5).
  const baselines::CublasSim cublas(dev);
  baselines::GemmKernel comparator;
  for (const auto& k : cublas.legal_kernels(shape)) {
    if (k.name == "gemm_128x64_splitK4") comparator = k;
  }
  if (comparator.name.empty()) comparator = cublas.run_best_kernel(sim, shape).kernel;
  const auto& bt = comparator.tuning;
  const auto cublas_profile = cublas.profile(shape, comparator);
  const auto cublas_perf = sim.evaluate(cublas_profile);

  Table table({"", "ISAAC", "cuBLAS (best kernel)", "paper ISAAC", "paper cuBLAS"});
  auto kb = [](int bytes) { return Table::fmt_double(bytes / 1024.0, 2) + "kB"; };
  auto pct = [](double x) { return Table::fmt_double(100.0 * x, 0) + "%"; };
  table.add_row({"TFLOPS", Table::fmt_double(isaac_perf.achieved_tflops, 2),
                 Table::fmt_double(cublas_perf.achieved_tflops, 2), "3.73", "2.56"});
  table.add_row({"ML", std::to_string(it.ml), std::to_string(bt.ml), "64", "128"});
  table.add_row({"NL", std::to_string(it.nl), std::to_string(bt.nl), "32", "64"});
  table.add_row({"KL*KG (split)", std::to_string(it.kl * it.kg), std::to_string(bt.kl * bt.kg),
                 "4", "5"});
  table.add_row({"Shared Memory", kb(isaac_profile.smem_bytes_per_block),
                 kb(cublas_profile.smem_bytes_per_block), "12.25kB", "12.25kB"});
  table.add_row({"Registers", std::to_string(isaac_profile.regs_per_thread),
                 std::to_string(cublas_profile.regs_per_thread), "72", "120"});
  table.add_row({"Occupancy", pct(isaac_perf.occ.occupancy), pct(cublas_perf.occ.occupancy),
                 "17%", "10%"});
  table.add_row({"L2 hit rate", pct(isaac_perf.l2_hit_rate), pct(cublas_perf.l2_hit_rate),
                 "32%", "24%"});
  table.print(std::cout);

  const bool shape_holds =
      isaac_perf.achieved_tflops > cublas_perf.achieved_tflops && it.nl < bt.nl;
  std::printf("\n[%s] ISAAC beats the 128x64 kernel by choosing a narrower N tile for the\n"
              "32-wide batch (the paper's core point). Note: our simulated optimum hides\n"
              "latency through ILP (big micro-tiles, low occupancy) where the paper's\n"
              "silicon optimum rode occupancy — both are the same Volkov trade-off.\n",
              shape_holds ? "shape holds" : "shape NOT matched");
  return 0;
}
