// Table 2: cross-validation MSE for various MLP architectures, with and
// without the logarithmic feature transform (§5.2-5.3).
//
//     hidden layers                 #weights   paper MSE   paper (no log)
//     64                            1k         0.17        (1.2)
//     512                           10k        0.13        (1.0)
//     32,64,32                      5k         0.088       (0.80)
//     64,128,64                     17k        0.08        (0.75)
//     32,64,128,64,32               21k        0.073       –
//     64,128,256,128,64             83k        0.067       –
//     64,128,192,256,192,128,64     163k       0.062       –
//
// Shapes to match: deeper nets beat shallower ones at comparable parameter
// counts, and dropping the log transform is catastrophic. Default budget is
// scaled down (20k train / 4k test) so the whole bench runs in minutes on two
// cores; --full uses the paper's 200k/10k.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"
#include "mlp/regressor.hpp"
#include "tuning/collector.hpp"

int main(int argc, char** argv) {
  using namespace isaac;
  CliParser cli("bench_table2_mlp", "Table 2: cross-validation MSE per MLP architecture");
  cli.add_flag("full", "paper-scale: 200k train / 10k test samples", false);
  cli.add_int("epochs", "training epochs per architecture", 8);
  cli.add_int("seed", "seed", 0x7AB2);
  if (!cli.parse(argc, argv)) return 0;
  const bool full = cli.get_flag("full");
  const std::size_t train_n = full ? 200000 : 12000;
  const std::size_t test_n = full ? 10000 : 3000;
  const int epochs = static_cast<int>(cli.get_int("epochs"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const auto& dev = gpusim::tesla_p100();
  bench::banner("Table 2 — Cross-validation MSE for various MLP architectures", dev);

  std::fprintf(stderr, "[bench] collecting %zu samples...\n", train_n + test_n);
  gpusim::Simulator sim(dev, 0.03, seed);
  tuning::CollectorConfig ccfg;
  ccfg.num_samples = train_n + test_n;
  ccfg.seed = seed;
  auto report = tuning::collect_gemm(sim, ccfg);
  Rng shuffle_rng(seed);
  report.dataset.shuffle(shuffle_rng);
  const auto [test, train_set] = report.dataset.split(std::min(test_n, report.dataset.size() / 5));

  struct Arch {
    std::vector<int> hidden;
    const char* paper_mse;
    const char* paper_nolog;
  };
  const std::vector<Arch> archs = {
      {{64}, "0.17", "1.2"},
      {{512}, "0.13", "1.0"},
      {{32, 64, 32}, "0.088", "0.80"},
      {{64, 128, 64}, "0.08", "0.75"},
      {{32, 64, 128, 64, 32}, "0.073", "-"},
      {{64, 128, 256, 128, 64}, "0.067", "-"},
      {{64, 128, 192, 256, 192, 128, 64}, "0.062", "-"},
  };

  Table table({"hidden layers", "#weights", "MSE", "MSE (no log)", "paper MSE",
               "paper (no log)"});

  for (const auto& arch : archs) {
    std::string name;
    for (std::size_t i = 0; i < arch.hidden.size(); ++i) {
      name += (i ? ", " : "") + std::to_string(arch.hidden[i]);
    }
    std::fprintf(stderr, "[bench] training [%s]...\n", name.c_str());

    mlp::TrainConfig cfg;
    cfg.net.hidden = arch.hidden;
    cfg.epochs = epochs;
    cfg.seed = seed;
    const auto model = mlp::train(train_set, cfg);
    const double mse = model.mse(test);

    cfg.log_features = false;
    const auto raw_model = mlp::train(train_set, cfg);
    const double mse_raw = raw_model.mse(test);

    table.add_row({name, std::to_string(model.net().num_parameters()),
                   Table::fmt_double(mse, 3), Table::fmt_double(mse_raw, 2), arch.paper_mse,
                   arch.paper_nolog});
  }

  table.print(std::cout);
  std::printf("\nShapes to match: (1) deeper architectures reach lower MSE; (2) removing\n"
              "the log feature transform degrades MSE by roughly an order of magnitude.\n");
  return 0;
}
