// Shared driver for the CONV figures (Fig. 9, 10, 11): Table 5's Conv1–14
// through ISAAC's runtime inference vs the simulated cuDNN heuristics.
#pragma once

#include <string>
#include <vector>

#include "bench_util.hpp"

namespace isaac::bench {

struct ConvFigureOptions {
  std::string title;
  const gpusim::DeviceDescriptor* device = nullptr;
  std::vector<ConvTask> tasks;
  bool full = false;
  std::uint64_t seed = 0x15AAC;
};

int run_conv_figure(const ConvFigureOptions& options);

ConvFigureOptions parse_conv_flags(int argc, char** argv, const std::string& program,
                                   const std::string& description);

}  // namespace isaac::bench
