// Figure 5: cross-validation MSE vs training-set size. The paper sweeps
// 1..20 x 10^4 samples with the deepest Table-2 architecture and finds the
// curve flattens around 15 x 10^4 samples (~6 hours of data collection).
//
// Default budget scales the sweep down 10x (2k..20k) so it finishes in
// minutes; --full reproduces the paper's axis.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"
#include "mlp/regressor.hpp"
#include "tuning/collector.hpp"

int main(int argc, char** argv) {
  using namespace isaac;
  CliParser cli("bench_fig5_datasize", "Figure 5: cross-validation MSE vs dataset size");
  cli.add_flag("full", "paper-scale: up to 200k samples", false);
  cli.add_int("epochs", "training epochs per point", 8);
  cli.add_int("seed", "seed", 0x7AB5);
  if (!cli.parse(argc, argv)) return 0;
  const bool full = cli.get_flag("full");
  const std::size_t scale = full ? 10000 : 600;  // x10^4 in the paper (x600 scaled down)
  const int epochs = static_cast<int>(cli.get_int("epochs"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const auto& dev = gpusim::tesla_p100();
  bench::banner("Figure 5 — Cross-validation MSE for various dataset sizes", dev);

  const std::vector<std::size_t> sizes{1, 5, 10, 15, 20};
  const std::size_t test_n = full ? 10000 : 1500;

  std::fprintf(stderr, "[bench] collecting %zu samples...\n", sizes.back() * scale + test_n);
  gpusim::Simulator sim(dev, 0.03, seed);
  tuning::CollectorConfig ccfg;
  ccfg.num_samples = sizes.back() * scale + test_n;
  ccfg.seed = seed;
  auto report = tuning::collect_gemm(sim, ccfg);
  Rng shuffle_rng(seed);
  report.dataset.shuffle(shuffle_rng);
  const auto [test, pool] = report.dataset.split(std::min(test_n, report.dataset.size() / 5));

  Table table({"dataset size", "MSE", "paper MSE (approx)"});
  const char* paper[] = {"0.16", "0.10", "0.075", "0.065", "0.062"};

  std::vector<double> curve;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t n = std::min(sizes[i] * scale, pool.size());
    std::fprintf(stderr, "[bench] training on %zu samples...\n", n);
    mlp::TrainConfig cfg;
    cfg.net.hidden = {64, 128, 192, 256, 192, 128, 64};
    cfg.epochs = epochs;
    cfg.seed = seed;
    const auto model = mlp::train(pool.take(n), cfg);
    const double mse = model.mse(test);
    curve.push_back(mse);
    table.add_row({strings::format("%zu x 10^%d", sizes[i], full ? 4 : 3),
                   Table::fmt_double(mse, 3), paper[i]});
  }

  table.print(std::cout);
  const bool decreasing = curve.front() > curve.back();
  const bool flattens =
      curve.size() >= 3 &&
      (curve[curve.size() - 2] - curve.back()) < 0.5 * (curve[0] - curve[1] + 1e-12);
  std::printf("\nShapes to match: MSE decreases with data and flattens toward the right of\n"
              "the sweep. decreasing=%s flattening=%s\n", decreasing ? "yes" : "NO",
              flattens ? "yes" : "NO");
  return 0;
}
