// Figure 8: H/DGEMM performance on the Tesla P100. Half precision for
// LINPACK and DeepBench (where fp16 suffices), double precision for ICA and
// Blocked SVD (where fp64 is required). Paper headline shapes: ISAAC ~parity
// on fp16 LINPACK (cuBLAS has an fp16x2 build there), 2.5-3x on fp16
// DeepBench (cuBLAS lacks fp16x2 tiles off the LINPACK path), +5% LINPACK /
// +40% ICA / +15% SVD in fp64.
#include "gemm_figure.hpp"
#include "gpusim/device.hpp"

int main(int argc, char** argv) {
  using namespace isaac::bench;
  using isaac::gpusim::DataType;
  auto opts = parse_figure_flags(argc, argv, "bench_fig8_hdgemm_pascal",
                                 "Figure 8: H/DGEMM on Tesla P100");
  opts.title = "Figure 8 — H/DGEMM performance on the Tesla P100";
  opts.device = &isaac::gpusim::tesla_p100();
  opts.tasks = table4_gemm_tasks(/*square=*/DataType::F16, /*deepbench=*/DataType::F16,
                                 /*ica=*/DataType::F64, /*svd=*/DataType::F64);
  // Double-precision LINPACK rows as well (the paper shows both F64 and F16
  // LINPACK groups in Fig. 8).
  auto f64_squares = table4_gemm_tasks(DataType::F64, DataType::F16, DataType::F64,
                                       DataType::F64);
  for (auto& t : f64_squares) {
    if (t.group == "LINPACK") {
      t.group = "LINPACK [f64]";
      opts.tasks.push_back(t);
    }
  }
  opts.show_best_kernel = true;
  return run_gemm_figure(opts);
}
