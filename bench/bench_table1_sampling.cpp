// Table 1: proportion of samples accepted by the categorical generative model
// vs naive uniform sampling, "when each parameter is constrained to be a
// power of two between 1 and 16".
//
//                paper:  Categorical   Uniform
//        GEMM            20%           0.1%
//        CONV            15%           0.1%
//
// The reproduction reports the same two columns for both generators (legality
// judged by codegen::validate against random shapes on the P100 model).
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"
#include "tuning/collector.hpp"
#include "tuning/generative.hpp"
#include "tuning/search_space.hpp"

namespace {

using namespace isaac;

struct Rates {
  double categorical = 0.0;
  double uniform = 0.0;
};

template <typename Space, typename LegalFn>
Rates measure(const Space& space, const LegalFn& legal, std::size_t probe, std::size_t draws,
              Rng& rng) {
  tuning::CategoricalModel model(space.domains(), /*alpha=*/100.0);
  const auto uniform_stats = model.fit(legal, probe, rng);

  tuning::AcceptanceStats cat_stats;
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < draws; ++i) {
    model.sample_legal(legal, rng, out, cat_stats, 1);
  }
  return {cat_stats.rate(), uniform_stats.rate()};
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_table1_sampling",
                "Table 1: generative-model vs uniform sampling acceptance");
  cli.add_flag("full", "use a 200k-probe fit instead of 60k", false);
  cli.add_int("seed", "rng seed", 0x7AB1);
  if (!cli.parse(argc, argv)) return 0;
  const bool full = cli.get_flag("full");
  // Probing runs the validator only (~1 us per probe), so a deep fit is
  // cheap; the α = 100 prior needs many acceptances to sharpen.
  const std::size_t probe = full ? 1000000 : 250000;
  const std::size_t draws = full ? 50000 : 20000;

  const auto& dev = gpusim::tesla_p100();
  bench::banner("Table 1 — Proportion of samples accepted: categorical vs uniform", dev);
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

  // Shapes drawn from the collector's distribution; the legality predicate
  // couples the sampled tuning with a fresh random shape each probe, exactly
  // like the data-generation phase.
  tuning::CollectorConfig shape_cfg;

  const tuning::GemmSearchSpace gemm_space(/*cap16=*/true);
  Rng gemm_shape_rng = rng.fork(1);
  const auto gemm_rates = measure(
      gemm_space,
      [&](const std::vector<std::size_t>& c) {
        const auto shape = tuning::random_gemm_shape(shape_cfg, gemm_shape_rng);
        return codegen::validate(shape, gemm_space.decode(c), dev);
      },
      probe, draws, rng);

  const tuning::ConvSearchSpace conv_space(/*cap16=*/true);
  Rng conv_shape_rng = rng.fork(2);
  const auto conv_rates = measure(
      conv_space,
      [&](const std::vector<std::size_t>& c) {
        const auto shape = tuning::random_conv_shape(shape_cfg, conv_shape_rng);
        return codegen::validate(shape, conv_space.decode(c), dev);
      },
      probe, draws, rng);

  Table table({"", "Categorical (measured)", "Uniform (measured)", "Categorical (paper)",
               "Uniform (paper)"});
  auto pct = [](double r) { return Table::fmt_double(100.0 * r, 2) + "%"; };
  table.add_row({"GEMM", pct(gemm_rates.categorical), pct(gemm_rates.uniform), "20%", "0.1%"});
  table.add_row({"CONV", pct(conv_rates.categorical), pct(conv_rates.uniform), "15%", "0.1%"});
  table.print(std::cout);

  std::printf("\nShape to match: categorical acceptance exceeds uniform by a large factor,\n"
              "making 50k-kernel training sets collectable in hours. (The paper reports two\n"
              "orders of magnitude; the factorized model's gain depends on how much of the\n"
              "legality is explained by per-parameter marginals — see EXPERIMENTS.md.)\n");
  const bool ok = gemm_rates.categorical > 5.0 * gemm_rates.uniform &&
                  conv_rates.categorical > 3.0 * conv_rates.uniform;
  std::printf("ratio GEMM: %.1fx   CONV: %.1fx   [%s]\n",
              gemm_rates.categorical / std::max(gemm_rates.uniform, 1e-9),
              conv_rates.categorical / std::max(conv_rates.uniform, 1e-9),
              ok ? "shape holds" : "shape NOT matched");
  return 0;
}
