// Figure 7: SGEMM performance on the Tesla P100 — ISAAC vs cuBLAS heuristics
// vs the cublasGemmEx "Best Kernel" bypass. Paper headline shapes: parity on
// LINPACK (both ~85% of peak), ~80% win on DeepBench vs best kernel, ~5% on
// ICA vs best kernel (heuristics are 10x off), ~30% on Blocked SVD.
#include "gemm_figure.hpp"
#include "gpusim/device.hpp"

int main(int argc, char** argv) {
  using namespace isaac::bench;
  auto opts = parse_figure_flags(argc, argv, "bench_fig7_sgemm_pascal",
                                 "Figure 7: SGEMM on Tesla P100 (ISAAC vs cuBLAS vs Best Kernel)");
  opts.title = "Figure 7 — SGEMM performance on the Tesla P100";
  opts.device = &isaac::gpusim::tesla_p100();
  opts.tasks = table4_gemm_tasks();
  opts.show_best_kernel = true;
  return run_gemm_figure(opts);
}
