// Shared infrastructure for the bench harnesses: the paper's task tables
// (Table 4 for GEMM, Table 5 for CONV) with the paper's reported numbers for
// side-by-side printing, plus cached model training so each bench binary can
// run standalone without re-collecting data.
//
// Absolute TFLOPS come from the device simulator, so only the *shape* of each
// result (who wins, by what factor, where crossovers fall) is comparable to
// the paper; EXPERIMENTS.md records both.
#pragma once

#include <string>
#include <vector>

#include "codegen/conv.hpp"
#include "codegen/gemm.hpp"
#include "core/inference.hpp"
#include "gpusim/simulator.hpp"
#include "mlp/regressor.hpp"

namespace isaac::bench {

// ---------------------------------------------------------------- tasks -----

struct GemmTask {
  std::string group;  // LINPACK / DeepBench [F] / DeepBench [B] / ICA / Blocked SVD
  std::string label;  // e.g. "N=16"
  codegen::GemmShape shape;
};

/// Table 4 task list (fp32 by default; fig-8 benches override dtype).
std::vector<GemmTask> table4_gemm_tasks(gpusim::DataType dtype_square = gpusim::DataType::F32,
                                        gpusim::DataType dtype_deepbench = gpusim::DataType::F32,
                                        gpusim::DataType dtype_ica = gpusim::DataType::F32,
                                        gpusim::DataType dtype_svd = gpusim::DataType::F32);

struct ConvTask {
  std::string group;  // DeepSpeech / OCR / ...
  std::string label;  // Conv1..Conv14
  codegen::ConvShape shape;
};

/// Table 5 task list (Conv1..Conv14).
std::vector<ConvTask> table5_conv_tasks(gpusim::DataType dtype = gpusim::DataType::F32);

// ---------------------------------------------------------------- models ----

struct ModelOptions {
  std::size_t samples = 10000;
  int epochs = 12;
  std::vector<int> hidden{64, 128, 64};
  std::uint64_t seed = 0x15AAC;
};

/// Train (or load from ./isaac_bench_cache) a GEMM performance model for the
/// device. The cache key covers device + options, so --full runs retrain.
mlp::Regressor gemm_model(const gpusim::DeviceDescriptor& dev, const ModelOptions& opts = {});

/// Same for the CONV generator (trained on conv-collected data).
mlp::Regressor conv_model(const gpusim::DeviceDescriptor& dev, const ModelOptions& opts = {});

/// Default runtime-search settings for benches (subsampled candidate set;
/// pass --full to a bench to lift the cap).
search::SearchConfig bench_inference(bool full);

// ---------------------------------------------------------------- output ----

/// "x.xx TFLOPS" formatting helper.
std::string tflops(double gflops);

/// Print the standard bench banner.
void banner(const std::string& title, const gpusim::DeviceDescriptor& dev);

}  // namespace isaac::bench
