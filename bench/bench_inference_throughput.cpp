// Microbenchmarks (google-benchmark) for the §6 runtime-inference claims:
// the regression model evaluates "very quickly, in parallel, with constant
// latency" — up to a million configurations per second — while the legality
// check and the simulator launch stay negligible next to real kernel timing.
//
// BM_DispatchThroughput adds the concurrency baseline for the "millions of
// users" runtime: queries/sec through the shared Context's cached dispatch
// path (shared-locked cache lookup + kernel execution) at 1, 4 and 8 threads.
//
// Search-subsystem sweep mode: `bench_inference_throughput --search_sweep`
// skips google-benchmark and instead runs every registered search strategy
// across an evaluation-budget ladder on a fixed shape set, emitting one JSON
// line per (strategy, budget, shape) so the tuning-quality/cost trajectory
// can be tracked and diffed across PRs.
//
// Dispatch-latency mode: `--dispatch_latency` times cold `select()` calls
// under two-tier dispatch vs blocking tuning (p50/p99 per mode, speedup,
// refined-entry agreement) — the headline number for the tier-1 fast path.
//
// Rank-throughput mode: `--rank_throughput` measures whole-space model
// ranking (the §6 recipe's fixed cost and, since the two-tier dispatch, the
// cold-select latency driver) per operation: candidates scored per second
// through the allocation-free pipeline vs the pre-rewrite vector-of-vectors
// path (with top-k ordering agreement between the two), cold `select()`
// p50/p99, per-chunk scoring-time flatness (an allocations-per-candidate
// proxy: chunks after the first cost the same when nothing allocates), and
// the blocked GEMM's speedup over gemm_reference on the MLP-shaped case.
// One JSON line per op plus a summary line, for cross-PR trajectory diffing.
//
// Online-learning mode: `--online_learning` replays a cold shape stream
// against a degraded tesla_p100 with the model lifecycle enabled (DESIGN.md,
// "Online model lifecycle") and emits the probe-set error trajectory, drift
// trip / retrain / hot-swap counts, the stale-vs-fresh error improvement,
// and hot select() p99 with a retrain active vs idle — stdout JSON lines
// plus BENCH_online_learning.json for the CI artifact.
//
// Chaos mode: `--chaos` replays a Zipf shape stream fault-free, under a
// failpoint storm across every fault domain, and through recovery — asserting
// that no exception escapes select(), storm p99 stays bounded, and the cache
// converges back to refined entries once faults clear (DESIGN.md, "Failure
// domains"). Emits BENCH_chaos.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "codegen/gemm.hpp"
#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "core/isaac.hpp"
#include "gpusim/device.hpp"
#include "gpusim/simulator.hpp"
#include "linalg/blas.hpp"
#include "mlp/regressor.hpp"
#include "search/factory.hpp"
#include "search/model_topk.hpp"
#include "telemetry/telemetry.hpp"
#include "tuning/collector.hpp"
#include "tuning/dataset.hpp"
#include "tuning/feature_batch.hpp"
#include "tuning/search_space.hpp"

namespace {

using namespace isaac;

const mlp::Regressor& model() {
  static const mlp::Regressor m = [] {
    gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 9);
    tuning::CollectorConfig cfg;
    cfg.num_samples = 1500;
    cfg.seed = 9;
    const auto report = tuning::collect_gemm(sim, cfg);
    mlp::TrainConfig tc;
    tc.net.hidden = {64, 128, 64};
    tc.epochs = 6;
    return mlp::train(report.dataset, tc);
  }();
  return m;
}

codegen::GemmShape bench_shape() {
  codegen::GemmShape s;
  s.m = 2560;
  s.n = 32;
  s.k = 2560;
  return s;
}

void BM_ValidateConfig(benchmark::State& state) {
  const tuning::GemmSearchSpace space;
  Rng rng(1);
  const auto shape = bench_shape();
  const auto& dev = gpusim::tesla_p100();
  std::vector<codegen::GemmTuning> configs;
  for (int i = 0; i < 512; ++i) configs.push_back(space.sample_uniform(rng));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codegen::validate(shape, configs[i++ % configs.size()], dev));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ValidateConfig);

void BM_AnalyzeConfig(benchmark::State& state) {
  const auto shape = bench_shape();
  const auto& dev = gpusim::tesla_p100();
  codegen::GemmTuning t;
  t.ms = 4;
  t.ns = 4;
  t.ml = 64;
  t.nl = 32;
  t.u = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codegen::analyze(shape, t, dev));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnalyzeConfig);

void BM_SimulatorLaunch(benchmark::State& state) {
  const auto shape = bench_shape();
  const auto& dev = gpusim::tesla_p100();
  gpusim::Simulator sim(dev, 0.03, 3);
  codegen::GemmTuning t;
  t.ms = 4;
  t.ns = 4;
  t.ml = 64;
  t.nl = 32;
  t.u = 8;
  const auto profile = codegen::analyze(shape, t, dev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.launch(profile));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorLaunch);

void BM_ModelScoring(benchmark::State& state) {
  // Batched MLP scoring — the paper's "million configurations per second"
  // claim lives or dies here. items/s in the report = configurations/s.
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto shape = bench_shape();
  const tuning::GemmSearchSpace space;
  Rng rng(7);
  std::vector<std::vector<double>> rows;
  rows.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    rows.push_back(tuning::features(shape, space.sample_uniform(rng)));
  }
  const auto& m = model();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.predict_gflops_batch(rows));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ModelScoring)->Arg(256)->Arg(4096)->Arg(16384);

// ---------------------------------------------------------------- dispatch --

core::ContextOptions dispatch_options() {
  core::ContextOptions opts;
  opts.search.budget = 10;
  opts.search.reeval_reps = 3;
  opts.search.max_candidates = 8000;
  return opts;
}

core::Context& dispatch_context() {
  // Context is non-movable (it owns mutexes): build it in place and install
  // the model inside the thread-safe one-time initialization.
  static core::Context& ctx = []() -> core::Context& {
    static core::Context c(gpusim::tesla_p100(), dispatch_options());
    c.set_model(model());
    return c;
  }();
  return ctx;
}

std::vector<codegen::GemmShape> dispatch_shapes() {
  std::vector<codegen::GemmShape> shapes;
  for (const std::int64_t n : {8, 16, 24, 32}) {
    codegen::GemmShape s;
    s.m = 64;
    s.n = n;
    s.k = 64;
    shapes.push_back(s);
  }
  return shapes;
}

void BM_DispatchThroughput(benchmark::State& state) {
  // Hot-path queries/sec against one shared Context: every call takes the
  // shared-locked cache lookup, executes the selected kernel functionally,
  // and re-times it on the device model. Threads(N) reports aggregate
  // items/s across N concurrent callers.
  auto& ctx = dispatch_context();
  const auto shapes = dispatch_shapes();
  if (state.thread_index() == 0) {
    ctx.warmup(shapes).wait();  // all shapes hot before timing starts
    ctx.drain_background();     // …and fully refined: no tuning noise in-loop
  }

  // Per-thread buffers sized for the largest shape.
  std::vector<float> a(64 * 64, 0.5f), b(64 * 32, 0.25f), c(64 * 32, 0.0f);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& shape = shapes[i++ % shapes.size()];
    const auto info = ctx.gemm(shape, 1.0f, a.data(), shape.m, b.data(), shape.k, 0.0f,
                               c.data(), shape.m);
    benchmark::DoNotOptimize(info.gflops);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchThroughput)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

void BM_DispatchSelectOnly(benchmark::State& state) {
  // The selection path alone (no kernel execution): the pure dispatch
  // overhead a server pays per query once everything is cached.
  auto& ctx = dispatch_context();
  const auto shapes = dispatch_shapes();
  if (state.thread_index() == 0) {
    ctx.warmup(shapes).wait();
    ctx.drain_background();
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.select<core::GemmOp>(shapes[i++ % shapes.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchSelectOnly)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

void BM_GenerativeSampling(benchmark::State& state) {
  const tuning::GemmSearchSpace space;
  tuning::CategoricalModel gen(space.domains());
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenerativeSampling);

// ---------------------------------------------------------- online learning --

/// tesla_p100 after "the device changed under us": fewer SMs, lower clocks,
/// a third of the advertised peak. A model trained on the real p100
/// over-predicts on every shape here — the drift scenario's ground truth.
gpusim::DeviceDescriptor degraded_p100() {
  gpusim::DeviceDescriptor dev = gpusim::tesla_p100();
  dev.name = "tesla_p100_degraded";
  dev.num_sms /= 2;
  dev.boost_clock_ghz *= 0.6;
  dev.peak_sp_tflops *= 0.3;
  return dev;
}

/// Ground-truth (features, measured gflops) pairs on the degraded device —
/// the held-out probe set the error trajectory is evaluated against.
const tuning::Dataset& degraded_probe() {
  static const tuning::Dataset data = [] {
    gpusim::Simulator sim(degraded_p100(), 0.0, 31);
    tuning::CollectorConfig cfg;
    cfg.num_samples = 400;
    cfg.seed = 31;
    return tuning::collect_gemm(sim, cfg).dataset;
  }();
  return data;
}

double mean_rel_error(const mlp::Regressor& m, const tuning::Dataset& data) {
  double acc = 0.0;
  for (const auto& s : data.samples()) {
    acc += std::abs(m.predict_gflops(s.x) - s.y) / s.y;
  }
  return acc / static_cast<double>(data.size());
}

struct RetrainLatency {
  double p99_baseline_us = 0.0;   ///< hot select p99, no retrain running
  double p99_during_us = 0.0;     ///< hot select p99 while the retrain trains
  std::size_t during_samples = 0; ///< selects timed inside the retrain window
  double retrain_wall_ms = 0.0;
  bool retrained = false;         ///< the retrain actually ran and hot-swapped
};

/// Hot-path select() latency with and without an active background retrain —
/// the "retraining must never block dispatch" number. The retrain runs on the
/// global thread pool; the measuring thread owns the hot cache-hit path, so
/// any p99 regression here would be lock contention, which is exactly what
/// the snapshot API removes. Raw per-select p99 over tens of thousands of
/// samples: scheduler preemptions (sub-0.1% of samples on a busy runner)
/// stay below the 1% tail.
RetrainLatency measure_select_under_retrain() {
  core::ContextOptions opts = dispatch_options();
  opts.online.enabled = true;
  opts.online.drift.threshold = 1e9;  // retrain only on explicit request
  opts.online.retrain.min_observations = 32;
  opts.online.retrain.epochs = 150;   // a deliberately wide retrain window
  core::Context ctx(gpusim::tesla_p100(), opts);
  ctx.set_model(model());
  const auto shapes = dispatch_shapes();
  ctx.warmup(shapes).wait();
  ctx.drain_background();

  using Clock = std::chrono::steady_clock;
  const auto time_select_us = [&](std::size_t i) {
    const auto t0 = Clock::now();
    ctx.select<core::GemmOp>(shapes[i % shapes.size()]);
    return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
  };

  constexpr std::size_t kBaselineSamples = 20000;
  std::vector<double> baseline_us;
  baseline_us.reserve(kBaselineSamples);
  for (std::size_t i = 0; i < kBaselineSamples; ++i) baseline_us.push_back(time_select_us(i));

  // Feed the log a fold big enough to keep the trainer busy for a while.
  const auto& probe = degraded_probe();
  const std::uint64_t version = ctx.model_snapshot()->version();
  for (int rep = 0; rep < 4; ++rep) {
    for (const auto& s : probe.samples()) {
      tuning::Observation o;
      o.op = "gemm";
      o.features = s.x;
      o.measured_gflops = s.y;
      o.predicted_gflops = s.y;
      o.model_version = version;
      ctx.observation_log().append(std::move(o));
    }
  }

  RetrainLatency out;
  std::vector<double> during_us;
  during_us.reserve(kBaselineSamples);
  if (ctx.request_retrain()) {
    constexpr std::size_t kMaxDuringSamples = 400000;
    std::size_t i = 0;
    while (ctx.retrain_in_flight() && during_us.size() < kMaxDuringSamples) {
      during_us.push_back(time_select_us(i++));
    }
  }
  ctx.drain_background();
  out.retrained = ctx.retrains() > 0;
  out.retrain_wall_ms = static_cast<double>(ctx.last_retrain_us()) / 1000.0;
  out.during_samples = during_us.size();
  // Bracket the retrain window with a second idle baseline and keep the
  // worse of the two: ambient machine drift (frequency scaling, a noisy
  // neighbour) inflates both baselines, while model-path lock contention —
  // what this measurement exists to catch — only inflates the during-window.
  std::vector<double> baseline2_us;
  baseline2_us.reserve(kBaselineSamples);
  for (std::size_t i = 0; i < kBaselineSamples; ++i) baseline2_us.push_back(time_select_us(i));
  out.p99_baseline_us =
      std::max(stats::percentile(baseline_us, 0.99), stats::percentile(baseline2_us, 0.99));
  out.p99_during_us = during_us.empty() ? 0.0 : stats::percentile(during_us, 0.99);
  return out;
}

/// Online-learning mode: `--online_learning` replays a cold GEMM stream
/// against the degraded device with the full lifecycle enabled — blocking
/// searches feed the observation log, drift trips, warm-start retrains run
/// on the pool, successors hot-swap in — and emits the error trajectory
/// (serving-model error on the degraded probe set after every batch), the
/// drift/retrain/swap counts, the stale-vs-fresh error improvement, and the
/// hot select() p99 with a retrain active vs idle. One JSON object per line
/// on stdout, mirrored to BENCH_online_learning.json for CI upload.
int run_online_learning() {
  const auto& m = model();
  const auto& probe = degraded_probe();
  const double err_stale = mean_rel_error(m, probe);
  std::string json;

  core::ContextOptions opts = dispatch_options();
  opts.two_tier = false;  // the leader records synchronously: deterministic counts
  opts.online.enabled = true;
  opts.online.drift.threshold = 0.35;
  opts.online.drift.window = 32;
  opts.online.drift.min_observations = 16;
  opts.online.retrain.min_observations = 48;
  opts.online.retrain.epochs = 40;
  core::Context ctx(degraded_p100(), opts);
  ctx.set_model(m);

  // A cold shape stream: every select is a blocking search whose measured
  // set lands in the observation log.
  std::vector<codegen::GemmShape> stream;
  for (const std::int64_t base : {48, 64, 96, 128, 192, 256}) {
    for (const std::int64_t n : {16, 32, 64, 96}) {
      codegen::GemmShape s;
      s.m = base;
      s.n = n;
      s.k = base + n;
      stream.push_back(s);
    }
  }

  constexpr std::size_t kBatch = 4;
  char line[512];
  for (std::size_t begin = 0; begin < stream.size(); begin += kBatch) {
    const std::size_t end = std::min(stream.size(), begin + kBatch);
    for (std::size_t i = begin; i < end; ++i) ctx.select<core::GemmOp>(stream[i]);
    ctx.drain_background();  // land any scheduled retrain before evaluating
    const auto snap = ctx.model_snapshot();
    std::snprintf(line, sizeof(line),
                  "{\"bench\":\"online_learning\",\"phase\":\"trajectory\",\"batch\":%zu,"
                  "\"shapes_replayed\":%zu,\"observations\":%llu,\"model_version\":%llu,"
                  "\"probe_rel_err\":%.4f}\n",
                  begin / kBatch, end,
                  static_cast<unsigned long long>(ctx.observation_log().total_appended()),
                  static_cast<unsigned long long>(snap->version()),
                  mean_rel_error(snap->regressor(), probe));
    std::fputs(line, stdout);
    std::fflush(stdout);
    json.append(line);
  }

  const double err_fresh = mean_rel_error(ctx.model_snapshot()->regressor(), probe);
  const double improvement = err_fresh > 0.0 ? err_stale / err_fresh : 0.0;
  const auto rl = measure_select_under_retrain();
  const double p99_ratio =
      rl.p99_baseline_us > 0.0 ? rl.p99_during_us / rl.p99_baseline_us : 0.0;

  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"online_learning\",\"phase\":\"summary\",\"drift_trips\":%zu,"
      "\"retrains\":%zu,\"swaps\":%zu,\"model_version\":%llu,"
      "\"err_stale\":%.4f,\"err_fresh\":%.4f,\"err_improvement\":%.2f,"
      "\"retrain_wall_ms\":%.1f,\"p99_select_baseline_us\":%.2f,"
      "\"p99_select_during_retrain_us\":%.2f,\"p99_ratio\":%.3f,"
      "\"during_samples\":%zu}\n",
      ctx.drift_trips(), ctx.retrains(), ctx.model_swaps(),
      static_cast<unsigned long long>(ctx.model_snapshot()->version()), err_stale, err_fresh,
      improvement, rl.retrain_wall_ms, rl.p99_baseline_us, rl.p99_during_us, p99_ratio,
      rl.during_samples);
  std::fputs(line, stdout);
  std::fflush(stdout);
  json.append(line);

  if (std::FILE* f = std::fopen("BENCH_online_learning.json", "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
  return 0;
}

// ------------------------------------------------------------------ chaos --

/// Zipf-shaped index stream over a pool of `k` shapes: rank r drawn with
/// probability ∝ 1/(r+1) — a few hot shapes dominate, the tail stays cold.
std::vector<std::size_t> zipf_stream(std::size_t k, std::size_t n, std::uint64_t seed) {
  std::vector<double> cum(k);
  double acc = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    acc += 1.0 / static_cast<double>(i + 1);
    cum[i] = acc;
  }
  Rng rng(seed);
  std::vector<std::size_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform(0.0, acc);
    out.push_back(static_cast<std::size_t>(
        std::lower_bound(cum.begin(), cum.end(), u) - cum.begin()));
  }
  return out;
}

/// `pool_id` keys distinct shape pools: baseline and storm must not share
/// cache entries, or the storm would run entirely on baseline-warmed hits.
std::vector<codegen::GemmShape> chaos_pool(std::size_t k, std::int64_t pool_id) {
  std::vector<codegen::GemmShape> pool;
  pool.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    codegen::GemmShape s;
    s.m = 32 + 16 * static_cast<std::int64_t>(i % 8);
    s.n = 16 + 8 * static_cast<std::int64_t>(i / 8);
    s.k = s.m + s.n + 64 * pool_id;
    pool.push_back(s);
  }
  return pool;
}

const char* breaker_state_name(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::closed: return "closed";
    case CircuitBreaker::State::open: return "open";
    case CircuitBreaker::State::half_open: return "half_open";
  }
  return "unknown";
}

struct ChaosReplay {
  std::vector<double> select_us;
  std::size_t escapes = 0;  ///< exceptions that escaped select() — must be 0
};

ChaosReplay chaos_replay(core::Context& ctx, const std::vector<codegen::GemmShape>& pool,
                         const std::vector<std::size_t>& stream) {
  using Clock = std::chrono::steady_clock;
  ChaosReplay out;
  out.select_us.reserve(stream.size());
  for (const std::size_t idx : stream) {
    const auto t0 = Clock::now();
    try {
      ctx.select<core::GemmOp>(pool[idx]);
    } catch (...) {
      ++out.escapes;
    }
    out.select_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
  }
  return out;
}

/// Chaos mode: `--chaos` replays a Zipf shape stream through the two-tier
/// dispatch runtime three times — fault-free baseline, then under a fault
/// storm (every failpoint domain armed probabilistically: device measurement,
/// model prediction, hung refinements, cache and observation-log disk writes,
/// retraining), then with the faults cleared — and asserts the hardening
/// contract: zero exceptions escape select() during the storm, storm-time
/// select p99 stays within 2× the fault-free baseline (with a 10 ms floor
/// for sub-millisecond baselines on noisy runners), and once the faults
/// clear the cache converges back to all-refined entries with the circuit
/// breaker closed. JSON lines on stdout, mirrored to BENCH_chaos.json.
int run_chaos() {
  const auto& m = model();

  core::ContextOptions opts = dispatch_options();
  opts.online.enabled = true;
  opts.online.drift.threshold = 1e9;  // retrains via cadence, not drift
  opts.online.retrain_every = 128;
  opts.online.retrain.min_observations = 64;
  opts.online.retrain.epochs = 4;
  opts.fault.refine_deadline_ms = 100.0;   // bound injected hangs
  opts.fault.refine_max_pending = 8;       // admission control active
  opts.fault.breaker_cooldown_ms = 100.0;
  opts.fault.refine_retry_reset_ms = 200.0;  // forgive dropped keys quickly
  opts.fault.disk_retry_ms = 50.0;
  core::Context ctx(gpusim::tesla_p100(), opts);
  ctx.set_model(m);

  constexpr std::size_t kPool = 24;
  constexpr std::size_t kStream = 400;
  std::string json;
  char line[768];
  const auto emit_phase = [&](const char* phase, const ChaosReplay& r) {
    std::snprintf(line, sizeof(line),
                  "{\"bench\":\"chaos\",\"phase\":\"%s\",\"selects\":%zu,\"escapes\":%zu,"
                  "\"p50_select_us\":%.1f,\"p99_select_us\":%.1f,\"max_select_us\":%.1f}\n",
                  phase, r.select_us.size(), r.escapes, stats::percentile(r.select_us, 0.50),
                  stats::percentile(r.select_us, 0.99),
                  *std::max_element(r.select_us.begin(), r.select_us.end()));
    std::fputs(line, stdout);
    std::fflush(stdout);
    json.append(line);
  };

  // Phase 1 — fault-free baseline on pool A.
  const auto pool_a = chaos_pool(kPool, 0);
  const auto baseline = chaos_replay(ctx, pool_a, zipf_stream(kPool, kStream, 17));
  ctx.drain_background();
  emit_phase("baseline", baseline);
  const double p99_base = stats::percentile(baseline.select_us, 0.99);

  // Phase 2 — the storm: every fault domain armed, fresh (cold) pool B so
  // leaders, refinements, disk appends and retrains all run under fire.
  failpoint::arm("measure.throw", "prob:0.15:1");
  failpoint::arm("predict.throw", "prob:0.12:2");
  failpoint::arm("refine.hang", "prob:0.12:3");
  failpoint::arm("cache.write_fail", "prob:0.25:4");
  failpoint::arm("obslog.write_fail", "prob:0.25:5");
  failpoint::arm("retrain.throw", "prob:0.5:6");
  const auto pool_b = chaos_pool(kPool, 1);
  const auto storm = chaos_replay(ctx, pool_b, zipf_stream(kPool, kStream, 23));
  ctx.drain_background();
  emit_phase("storm", storm);
  const double p99_storm = stats::percentile(storm.select_us, 0.99);
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"chaos\",\"phase\":\"storm_faults\",\"fallbacks_served\":%zu,"
      "\"breaker_short_circuits\":%zu,\"refinements_shed\":%zu,\"refinements_dropped\":%zu,"
      "\"cache_disk_writes_skipped\":%llu,\"obslog_disk_writes_skipped\":%llu,"
      "\"breaker_state\":\"%s\"}\n",
      ctx.fallbacks_served(), ctx.breaker_short_circuits(), ctx.refinements_shed(),
      ctx.refinements_dropped(),
      static_cast<unsigned long long>(ctx.cache().disk_writes_skipped()),
      static_cast<unsigned long long>(ctx.observation_log().disk_writes_skipped()),
      breaker_state_name(ctx.breaker_state("gemm")));
  std::fputs(line, stdout);
  std::fflush(stdout);
  json.append(line);

  // Phase 3 — recovery: faults clear; repeated hits must converge every
  // storm-era entry (fallback or provisional) back to the refined tier and
  // re-close the breaker. Each round re-arms what the previous round shed,
  // dropped, or left behind an open breaker.
  failpoint::disarm_all();
  bool converged = false;
  int rounds = 0;
  ChaosReplay recovery;
  for (; rounds < 40 && !converged; ++rounds) {
    converged = true;
    for (const auto& shape : pool_b) {
      using Clock = std::chrono::steady_clock;
      const auto t0 = Clock::now();
      core::EntryTier tier = core::EntryTier::refined;
      try {
        ctx.select<core::GemmOp>(shape, nullptr, &tier);
      } catch (...) {
        ++recovery.escapes;
      }
      recovery.select_us.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
      converged = converged && tier == core::EntryTier::refined;
    }
    ctx.drain_background();
    if (!converged) {
      // Dropped keys sit behind the retry-reset window: give it time to
      // forgive before the next round re-arms them.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  converged = converged && ctx.breaker_state("gemm") == CircuitBreaker::State::closed;
  emit_phase("recovery", recovery);

  const bool p99_ok = p99_storm <= std::max(2.0 * p99_base, p99_base + 10000.0);
  const bool escapes_ok = storm.escapes == 0 && baseline.escapes == 0 && recovery.escapes == 0;
  const bool disk_ok = !ctx.cache().disk_degraded() && !ctx.observation_log().disk_degraded();
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"chaos\",\"phase\":\"summary\",\"escapes\":%zu,\"p99_base_us\":%.1f,"
      "\"p99_storm_us\":%.1f,\"p99_ratio\":%.2f,\"p99_ok\":%s,\"recovery_rounds\":%d,"
      "\"converged\":%s,\"breaker_state\":\"%s\",\"disk_recovered\":%s}\n",
      storm.escapes + baseline.escapes + recovery.escapes, p99_base, p99_storm,
      p99_base > 0.0 ? p99_storm / p99_base : 0.0, p99_ok ? "true" : "false", rounds,
      converged ? "true" : "false", breaker_state_name(ctx.breaker_state("gemm")),
      disk_ok ? "true" : "false");
  std::fputs(line, stdout);
  std::fflush(stdout);
  json.append(line);

  if (std::FILE* f = std::fopen("BENCH_chaos.json", "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }

  if (!escapes_ok) {
    std::fprintf(stderr, "[chaos] %zu exception(s) escaped select() — dispatch must never throw under faults\n",
                 storm.escapes + baseline.escapes + recovery.escapes);
    return 1;
  }
  if (!p99_ok) {
    std::fprintf(stderr, "[chaos] storm select p99 %.1fus exceeds 2x baseline %.1fus\n",
                 p99_storm, p99_base);
    return 1;
  }
  if (!converged) {
    std::fprintf(stderr, "[chaos] cache failed to converge to refined tier after %d recovery rounds (breaker %s)\n",
                 rounds, breaker_state_name(ctx.breaker_state("gemm")));
    return 1;
  }
  if (!disk_ok) {
    std::fprintf(stderr, "[chaos] disk paths still degraded after faults cleared\n");
    return 1;
  }
  return 0;
}

// ------------------------------------------------------- dispatch latency --

/// Cold-dispatch latency mode: `--dispatch_latency` times the first
/// `select()` for a grid of distinct cold shapes under two-tier dispatch
/// (tier 1: the model's instant argmax + background refinement) and under
/// blocking tuning, reporting p50/p99 per mode, the speedup, and how often
/// the refined entry agrees with the blocking search's selection. One JSON
/// line per mode plus a summary line on stdout.
int run_dispatch_latency() {
  const auto& m = model();

  // Distinct cold shapes spanning square, skinny and deep regimes.
  std::vector<codegen::GemmShape> shapes;
  for (const std::int64_t base : {64, 96, 128, 192, 256, 384, 512, 768}) {
    for (const std::int64_t n : {16, 48, 133, 301, 512, 1024}) {
      codegen::GemmShape s;
      s.m = base;
      s.n = n;
      s.k = base + n;  // keep every (m, n, k) distinct
      shapes.push_back(s);
    }
  }

  core::ContextOptions opts = dispatch_options();
  opts.noise_sigma = 0.0;  // deterministic measurements: selections comparable
  core::Context fast(gpusim::tesla_p100(), opts);
  fast.set_model(m);
  auto blocking_opts = opts;
  blocking_opts.two_tier = false;
  core::Context blocking(gpusim::tesla_p100(), blocking_opts);
  blocking.set_model(m);

  const auto time_select_us = [](core::Context& ctx, const codegen::GemmShape& shape) {
    const auto t0 = std::chrono::steady_clock::now();
    ctx.select<core::GemmOp>(shape);
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  std::vector<double> fast_us, blocking_us;
  fast_us.reserve(shapes.size());
  blocking_us.reserve(shapes.size());
  for (const auto& shape : shapes) {
    fast_us.push_back(time_select_us(fast, shape));
    // Land the refinement outside the timed section: each sample then
    // measures the pure tier-1 path instead of racing the previous shape's
    // background search for cores (which would swamp p99 on small CI
    // runners; refinement/dispatch overlap is the throughput benches' job).
    fast.drain_background();
  }
  for (const auto& shape : shapes) blocking_us.push_back(time_select_us(blocking, shape));

  std::size_t agree = 0;
  const std::string& dev = fast.device().name;
  for (const auto& shape : shapes) {
    const auto refined = fast.cache().lookup<core::GemmOp>(dev, shape);
    const auto truth = blocking.cache().lookup<core::GemmOp>(dev, shape);
    if (refined && truth && *refined == *truth) ++agree;
  }

  const auto emit = [&](const char* mode, const std::vector<double>& us) {
    std::printf(
        "{\"bench\":\"dispatch_latency\",\"op\":\"gemm\",\"mode\":\"%s\","
        "\"cold_shapes\":%zu,\"p50_us\":%.1f,\"p99_us\":%.1f,\"p999_us\":%.1f,"
        "\"max_us\":%.1f}\n",
        mode, us.size(), stats::percentile(us, 0.50), stats::percentile(us, 0.99),
        stats::percentile(us, 0.999), *std::max_element(us.begin(), us.end()));
  };
  emit("two_tier", fast_us);
  emit("blocking", blocking_us);
  std::printf(
      "{\"bench\":\"dispatch_latency\",\"op\":\"gemm\",\"mode\":\"summary\","
      "\"p99_speedup\":%.1f,\"p999_speedup\":%.1f,\"refined_agreement\":%.3f,"
      "\"predictions\":%zu,\"refinements\":%zu}\n",
      stats::percentile(blocking_us, 0.99) / stats::percentile(fast_us, 0.99),
      stats::percentile(blocking_us, 0.999) / stats::percentile(fast_us, 0.999),
      static_cast<double>(agree) / static_cast<double>(shapes.size()), fast.predictions(),
      fast.refinements());
  std::fflush(stdout);

  // Retraining must never block dispatch: hot select() p99 with a warm-start
  // retrain actively training on the pool must stay within 1.2× of the
  // no-retrain baseline. Asserted here (not just reported) so any future
  // lock added to the model path fails this mode loudly.
  const auto rl = measure_select_under_retrain();
  const double p99_ratio =
      rl.p99_baseline_us > 0.0 ? rl.p99_during_us / rl.p99_baseline_us : 0.0;
  std::printf(
      "{\"bench\":\"dispatch_latency\",\"op\":\"gemm\",\"mode\":\"retrain_overlap\","
      "\"p99_baseline_us\":%.2f,\"p99_during_retrain_us\":%.2f,\"p99_ratio\":%.3f,"
      "\"during_samples\":%zu,\"retrain_wall_ms\":%.1f,\"retrained\":%s}\n",
      rl.p99_baseline_us, rl.p99_during_us, p99_ratio, rl.during_samples, rl.retrain_wall_ms,
      rl.retrained ? "true" : "false");
  std::fflush(stdout);
  if (!rl.retrained || rl.during_samples == 0) {
    std::fprintf(stderr,
                 "[dispatch_latency] retrain-overlap window never materialized "
                 "(retrained=%d, during_samples=%zu)\n",
                 rl.retrained ? 1 : 0, rl.during_samples);
    return 1;
  }
  if (p99_ratio > 1.2) {
    std::fprintf(stderr,
                 "[dispatch_latency] hot select p99 degraded %.3fx (> 1.2x) during an "
                 "active retrain — retraining is blocking dispatch\n",
                 p99_ratio);
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------- rank throughput --

/// The pre-rewrite ranking pipeline, preserved verbatim as the before/after
/// baseline: serial odometer sweep of X̂, stride subsample with seed
/// re-append, per-candidate vector<double> featurization, legacy chunked
/// scoring, partial sort. Must produce the same candidates and ordering as
/// rank_legal_space — the agreement field checks it on every run. A sibling
/// replica lives in tests/test_search.cpp (reference_rank) backing the
/// ordering-determinism test — keep the two in sync.
template <typename Op>
search::RankedCandidates<Op> legacy_rank(const search::SearchProblem<Op>& problem,
                                         const search::SearchConfig& config,
                                         std::size_t top_k) {
  search::RankedCandidates<Op> out;
  const auto& domains = problem.space->domains();
  search::Choice odometer(domains.size(), 0);
  do {
    ++out.visited;
    if (problem.legal(odometer)) {
      ++out.legal;
      out.candidates.push_back(odometer);
    }
  } while (search::advance_choice(odometer, domains));
  if (out.candidates.empty()) return out;

  const std::size_t cap = config.max_candidates;
  if (cap > 0 && out.candidates.size() > cap) {
    std::vector<search::Choice> kept;
    std::unordered_set<std::uint64_t> in_kept;
    const double step = static_cast<double>(out.candidates.size()) / static_cast<double>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      search::Choice& c = out.candidates[static_cast<std::size_t>(i * step)];
      if (in_kept.insert(search::choice_hash(c)).second) kept.push_back(std::move(c));
    }
    search::detail::append_seed_grid(problem, kept, in_kept);
    out.candidates = std::move(kept);
  }

  std::vector<std::vector<double>> rows(out.candidates.size());
  ThreadPool::global().parallel_for_each(out.candidates.size(), [&](std::size_t i) {
    rows[i] = problem.featurize(problem.space->decode(out.candidates[i]));
  });
  out.scores = problem.model->predict_gflops_chunked(rows, config.batch);
  out.order.resize(out.candidates.size());
  for (std::size_t i = 0; i < out.order.size(); ++i) out.order[i] = i;
  const std::size_t k = std::min(std::max<std::size_t>(top_k, 1), out.order.size());
  std::partial_sort(out.order.begin(), out.order.begin() + static_cast<std::ptrdiff_t>(k),
                    out.order.end(), [&](std::size_t a, std::size_t b) {
                      if (out.scores[a] != out.scores[b]) return out.scores[a] > out.scores[b];
                      return out.candidates[a] < out.candidates[b];
                    });
  out.order.resize(k);
  return out;
}

/// Per-op outcome of the rank-throughput bench, so the summary (and CI) can
/// gate on the weakest op instead of just the last one printed.
struct RankThroughputResult {
  double agreement = 0.0;     ///< top-k ordering agreement vs legacy_rank
  double enum_speedup = 0.0;  ///< pruned-walk skeleton build vs generate-and-test
  bool skeleton_match = true; ///< pruned survivor set == sweep survivor set
};

template <typename Op>
RankThroughputResult rank_throughput_op(
    const char* opname, const typename core::OperationTraits<Op>::Shape& rank_shape,
    const std::vector<typename core::OperationTraits<Op>::Shape>& cold_shapes,
    std::size_t max_candidates, const mlp::Regressor& m, std::string* json_sink) {
  using Clock = std::chrono::steady_clock;
  const auto secs = [](Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  const auto& dev = gpusim::tesla_p100();
  const typename core::OperationTraits<Op>::SearchSpace space;
  search::SearchProblem<Op> problem;
  problem.shape = &rank_shape;
  problem.device = &dev;
  problem.space = &space;
  problem.model = &m;
  search::SearchConfig cfg;
  cfg.max_candidates = max_candidates;
  constexpr std::size_t kTopK = 100;

  // Cold pass: pays the one-off structural-skeleton sweep and grows the
  // thread-local arenas.
  auto t0 = Clock::now();
  const auto first = search::rank_legal_space(problem, cfg, kTopK);
  const double cold_s = secs(t0);

  // Steady state: what a tuning pass / cold dispatch actually costs.
  constexpr int kReps = 3;
  t0 = Clock::now();
  std::size_t scored = 0;
  search::RankedCandidates<Op> fast;
  for (int i = 0; i < kReps; ++i) {
    fast = search::rank_legal_space(problem, cfg, kTopK);
    scored += fast.candidates.size();
  }
  const double warm_s = secs(t0);

  // Pre-rewrite baseline on the same machine/thread count, and ordering
  // agreement between the two pipelines (must be 1.0).
  t0 = Clock::now();
  const auto legacy = legacy_rank(problem, cfg, kTopK);
  const double legacy_s = secs(t0);
  std::size_t agree = 0;
  const std::size_t k = std::min(fast.order.size(), legacy.order.size());
  for (std::size_t i = 0; i < k; ++i) {
    if (fast.candidates[fast.order[i]] == legacy.candidates[legacy.order[i]]) ++agree;
  }
  const double agreement =
      (fast.candidates == legacy.candidates && k > 0)
          ? static_cast<double>(agree) / static_cast<double>(k)
          : 0.0;

  // Allocations-per-candidate proxy: re-score the ranked set chunk by chunk
  // (reusing one chunk-sized staging batch) and compare per-chunk times. A
  // pipeline that allocates per candidate/chunk shows a fat first chunk and
  // a long tail; an allocation-free one is flat.
  std::vector<double> chunk_us;
  {
    tuning::FeatureBatch full(m.num_features(), fast.candidates.size());
    ThreadPool::global().parallel_for_each(fast.candidates.size(), [&](std::size_t i) {
      problem.featurize_into(problem.space->decode(fast.candidates[i]), full.row(i));
    });
    tuning::FeatureBatch staging(m.num_features());
    const std::size_t chunk = cfg.batch;
    for (std::size_t begin = 0; begin < full.rows(); begin += chunk) {
      const std::size_t end = std::min(full.rows(), begin + chunk);
      staging.resize(end - begin);
      std::copy(full.row(begin), full.row(begin) + (end - begin) * full.arity(),
                staging.data());
      const auto c0 = Clock::now();
      const auto s = m.predict_gflops_chunked(staging, 0);
      benchmark::DoNotOptimize(s.data());
      chunk_us.push_back(secs(c0) * 1e6);
    }
  }

  // Enumeration engines head-to-head on the relaxed (skeleton) shape: the
  // generate-and-test flat-range sweep the skeleton builder ran before the
  // constraint-propagating rewrite, vs the pruned walk that replaced it —
  // same thread pool, same validate gate, survivor sets compared exactly.
  double enum_sweep_s = 0.0;
  double enum_pruned_s = 0.0;
  std::size_t skeleton_points = 0;
  bool skeleton_match = true;
  if constexpr (requires { core::OperationTraits<Op>::relax_shape(rank_shape); }) {
    using Traits = core::OperationTraits<Op>;
    const typename Traits::Shape relaxed = Traits::relax_shape(rank_shape);
    const auto& domains = space.domains();
    const std::size_t total = space.size();

    // Three timed reps of each engine, interleaved so both sides sample the
    // same machine-noise window; the engines are deterministic, so the
    // per-side minimum is the measurement least polluted by noise.
    constexpr int kEnumReps = 3;
    std::vector<std::uint64_t> sweep;
    std::vector<std::uint64_t> pruned;
    for (int rep = 0; rep < kEnumReps; ++rep) {
      t0 = Clock::now();
      constexpr std::size_t kChunk = std::size_t{1} << 16;
      const std::size_t nchunks = (total + kChunk - 1) / kChunk;
      std::vector<std::vector<std::uint64_t>> parts(nchunks);
      ThreadPool::global().parallel_for_each(nchunks, [&](std::size_t ci) {
        const std::size_t begin = ci * kChunk;
        const std::size_t end = std::min(total, begin + kChunk);
        search::Choice c(domains.size(), 0);
        search::choice_from_flat_into(begin, domains, c);
        auto& part = parts[ci];
        for (std::size_t flat = begin; flat < end; ++flat) {
          if (Traits::validate(relaxed, space.decode(c), dev)) part.push_back(flat);
          search::advance_choice(c, domains);
        }
      });
      sweep.clear();
      for (const auto& part : parts) sweep.insert(sweep.end(), part.begin(), part.end());
      const double sweep_s = secs(t0);
      if (rep == 0 || sweep_s < enum_sweep_s) enum_sweep_s = sweep_s;

      t0 = Clock::now();
      pruned = search::detail::build_skeleton_points(problem, relaxed);
      const double pruned_s = secs(t0);
      if (rep == 0 || pruned_s < enum_pruned_s) enum_pruned_s = pruned_s;
    }

    skeleton_points = pruned.size();
    skeleton_match = (pruned == sweep);
  }

  // Cold select() latency: fresh two-tier context, every shape a cache miss.
  core::ContextOptions opts = dispatch_options();
  opts.noise_sigma = 0.0;
  core::Context ctx(dev, opts);
  ctx.set_model(m);
  std::vector<double> select_us;
  select_us.reserve(cold_shapes.size());
  for (const auto& shape : cold_shapes) {
    const auto s0 = Clock::now();
    ctx.select<Op>(shape);
    select_us.push_back(secs(s0) * 1e6);
    ctx.drain_background();  // keep refinement out of the next timed select
  }

  RankThroughputResult result;
  result.agreement = agreement;
  result.enum_speedup = enum_pruned_s > 0.0 ? enum_sweep_s / enum_pruned_s : 0.0;
  result.skeleton_match = skeleton_match;

  char line[1024];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"rank_throughput\",\"op\":\"%s\",\"space\":%zu,\"candidates\":%zu,"
      "\"cands_per_sec\":%.0f,\"cold_cands_per_sec\":%.0f,\"legacy_cands_per_sec\":%.0f,"
      "\"speedup_vs_legacy\":%.2f,\"ordering_agreement\":%.3f,"
      "\"skeleton_points\":%zu,\"enum_sweep_s\":%.3f,\"enum_pruned_s\":%.3f,"
      "\"enum_speedup\":%.2f,\"skeleton_match\":%s,"
      "\"p50_select_us\":%.1f,\"p99_select_us\":%.1f,"
      "\"chunk_us_first\":%.1f,\"chunk_us_p50\":%.1f,\"chunk_us_max\":%.1f}\n",
      opname, space.size(), fast.candidates.size(),
      static_cast<double>(scored) / warm_s,
      static_cast<double>(first.candidates.size()) / cold_s,
      static_cast<double>(legacy.candidates.size()) / legacy_s,
      (static_cast<double>(scored) / warm_s) /
          (static_cast<double>(legacy.candidates.size()) / legacy_s),
      agreement, skeleton_points, enum_sweep_s, enum_pruned_s, result.enum_speedup,
      skeleton_match ? "true" : "false", stats::percentile(select_us, 0.50),
      stats::percentile(select_us, 0.99), chunk_us.front(),
      stats::percentile(chunk_us, 0.50),
      *std::max_element(chunk_us.begin(), chunk_us.end()));
  std::fputs(line, stdout);
  std::fflush(stdout);
  if (json_sink) json_sink->append(line);
  return result;
}

int run_rank_throughput() {
  const auto& m = model();

  // The MLP-regime GEMM the ranking pipeline actually runs (chunk × features
  // through the 64-128-64 stack): blocked kernel vs the naive reference.
  double gemm_speedup = 0.0;
  {
    using Clock = std::chrono::steady_clock;
    Rng rng(11);
    linalg::Matrix a(2048, 64), b(64, 128), c1(2048, 128), c2(2048, 128);
    a.randomize_uniform(rng, -1.0f, 1.0f);
    b.randomize_uniform(rng, -1.0f, 1.0f);
    linalg::gemm(linalg::Trans::No, linalg::Trans::No, 1.0f, a, b, 0.0f, c1);  // warm packs
    constexpr int kReps = 20;
    auto t0 = Clock::now();
    for (int i = 0; i < kReps; ++i) {
      linalg::gemm(linalg::Trans::No, linalg::Trans::No, 1.0f, a, b, 0.0f, c1);
    }
    const double blocked_s = std::chrono::duration<double>(Clock::now() - t0).count();
    t0 = Clock::now();
    for (int i = 0; i < kReps; ++i) {
      linalg::gemm_reference(linalg::Trans::No, linalg::Trans::No, 1.0f, a, b, 0.0f, c2);
    }
    const double reference_s = std::chrono::duration<double>(Clock::now() - t0).count();
    gemm_speedup = reference_s / blocked_s;
  }

  std::vector<codegen::GemmShape> gemm_cold;
  for (const std::int64_t base : {64, 128, 256, 512, 768, 1024}) {
    for (const std::int64_t n : {16, 133, 512}) {
      codegen::GemmShape s;
      s.m = base;
      s.n = n;
      s.k = base + n;
      gemm_cold.push_back(s);
    }
  }
  std::vector<codegen::ConvShape> conv_cold;
  for (const std::int64_t hw : {7, 14, 28, 54}) {
    for (const std::int64_t c : {64, 128, 256}) {
      conv_cold.push_back(codegen::ConvShape::from_npq(8, hw, hw, c, c, 3, 3));
    }
  }
  std::vector<codegen::BatchedGemmShape> bgemm_cold;
  for (const std::int64_t batch : {4, 16, 64}) {
    for (const std::int64_t mm : {64, 128, 256, 512}) {
      codegen::BatchedGemmShape s;
      s.batch = batch;
      s.gemm.m = mm;
      s.gemm.n = 32;
      s.gemm.k = mm + batch;
      bgemm_cold.push_back(s);
    }
  }

  codegen::GemmShape gemm_rank = bench_shape();  // 2560×32×2560, ranked densely
  auto conv_rank = codegen::ConvShape::from_npq(8, 54, 54, 64, 64, 3, 3);
  codegen::BatchedGemmShape bgemm_rank;
  bgemm_rank.batch = 16;
  bgemm_rank.gemm.m = 512;
  bgemm_rank.gemm.n = 64;
  bgemm_rank.gemm.k = 512;

  std::string json;
  const auto gemm_res =
      rank_throughput_op<core::GemmOp>("gemm", gemm_rank, gemm_cold, 0, m, &json);
  const auto conv_res =
      rank_throughput_op<core::ConvOp>("conv", conv_rank, conv_cold, 200000, m, &json);
  const auto bgemm_res =
      rank_throughput_op<core::BatchedGemmOp>("bgemm", bgemm_rank, bgemm_cold, 0, m, &json);
  const double min_agreement =
      std::min({gemm_res.agreement, conv_res.agreement, bgemm_res.agreement});
  const bool all_match =
      gemm_res.skeleton_match && conv_res.skeleton_match && bgemm_res.skeleton_match;

  char line[512];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"rank_throughput\",\"op\":\"summary\",\"gemm_speedup_vs_reference\":%.2f,"
      "\"min_ordering_agreement\":%.3f,\"conv_enum_speedup\":%.2f,"
      "\"min_enum_speedup\":%.2f,\"all_skeleton_match\":%s}\n",
      gemm_speedup, min_agreement, conv_res.enum_speedup,
      std::min({gemm_res.enum_speedup, conv_res.enum_speedup, bgemm_res.enum_speedup}),
      all_match ? "true" : "false");
  std::fputs(line, stdout);
  std::fflush(stdout);
  json.append(line);

  // Artifact copy for CI upload / trajectory diffing: one JSON object per
  // line, same content as stdout.
  if (std::FILE* f = std::fopen("BENCH_rank_throughput.json", "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
  return 0;
}

// ------------------------------------------------------------ search sweep --

/// Strategy × budget sweep over a fixed shape set; one JSON object per line
/// on stdout (everything else goes to stderr via the logger), so downstream
/// tooling can `jq` the perf trajectory across PRs.
int run_search_sweep() {
  const gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 9);
  const auto& m = model();

  std::vector<codegen::GemmShape> shapes;
  for (const auto& [mm, nn, kk] :
       {std::array<std::int64_t, 3>{512, 512, 512}, std::array<std::int64_t, 3>{2560, 32, 2560},
        std::array<std::int64_t, 3>{64, 64, 8192}}) {
    codegen::GemmShape s;
    s.m = mm;
    s.n = nn;
    s.k = kk;
    shapes.push_back(s);
  }

  for (const auto& strategy : search::strategy_names()) {
    for (const std::size_t budget : {16, 64, 256}) {
      for (const auto& shape : shapes) {
        search::SearchConfig cfg;
        cfg.strategy = strategy;
        cfg.budget = budget;
        cfg.reeval_reps = 3;
        cfg.max_candidates = 20000;
        const auto t0 = std::chrono::steady_clock::now();
        core::GemmTuneResult result;
        try {
          result = core::tune_gemm(shape, m, sim, cfg);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "[sweep] %s budget=%zu %s failed: %s\n", strategy.c_str(),
                       budget, shape.to_string().c_str(), e.what());
          continue;
        }
        const double wall_ms =
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                .count();
        std::printf(
            "{\"bench\":\"search_sweep\",\"op\":\"gemm\",\"strategy\":\"%s\","
            "\"budget\":%zu,\"shape\":\"%s\",\"best_gflops\":%.3f,"
            "\"predicted_gflops\":%.3f,\"kernel\":\"%s\",\"measured\":%zu,"
            "\"legal\":%zu,\"enumerated\":%zu,\"wall_ms\":%.3f}\n",
            strategy.c_str(), budget, shape.to_string().c_str(),
            result.best.measured_gflops, result.best.predicted_gflops,
            result.best.tuning.to_string().c_str(), result.measured, result.legal,
            result.enumerated, wall_ms);
        std::fflush(stdout);
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --telemetry_dump[=path]: enable metrics + tracing before the selected
  // mode runs and write the JSON snapshot afterwards. Default target
  // telemetry.json; "stderr" writes to stderr. Never stdout — the modes own
  // stdout for their machine-readable BENCH lines.
  std::string telemetry_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    constexpr const char* kFlag = "--telemetry_dump";
    if (arg == kFlag) {
      telemetry_path = "telemetry.json";
    } else if (arg.rfind(std::string(kFlag) + "=", 0) == 0) {
      telemetry_path = arg.substr(std::string(kFlag).size() + 1);
      if (telemetry_path.empty()) telemetry_path = "telemetry.json";
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!telemetry_path.empty()) {
    isaac::telemetry::set_enabled(true);
    isaac::telemetry::set_tracing(true);
  }
  const auto finish = [&](int rc) {
    if (!telemetry_path.empty() && !isaac::telemetry::dump_to_file(telemetry_path)) return 1;
    return rc;
  };
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (std::string(args[i]) == "--search_sweep") return finish(run_search_sweep());
    if (std::string(args[i]) == "--dispatch_latency") return finish(run_dispatch_latency());
    if (std::string(args[i]) == "--rank_throughput") return finish(run_rank_throughput());
    if (std::string(args[i]) == "--online_learning") return finish(run_online_learning());
    if (std::string(args[i]) == "--chaos") return finish(run_chaos());
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return finish(0);
}
