// Microbenchmarks (google-benchmark) for the §6 runtime-inference claims:
// the regression model evaluates "very quickly, in parallel, with constant
// latency" — up to a million configurations per second — while the legality
// check and the simulator launch stay negligible next to real kernel timing.
//
// BM_DispatchThroughput adds the concurrency baseline for the "millions of
// users" runtime: queries/sec through the shared Context's cached dispatch
// path (shared-locked cache lookup + kernel execution) at 1, 4 and 8 threads.
//
// Search-subsystem sweep mode: `bench_inference_throughput --search_sweep`
// skips google-benchmark and instead runs every registered search strategy
// across an evaluation-budget ladder on a fixed shape set, emitting one JSON
// line per (strategy, budget, shape) so the tuning-quality/cost trajectory
// can be tracked and diffed across PRs.
//
// Dispatch-latency mode: `--dispatch_latency` times cold `select()` calls
// under two-tier dispatch vs blocking tuning (p50/p99 per mode, speedup,
// refined-entry agreement) — the headline number for the tier-1 fast path.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "codegen/gemm.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/isaac.hpp"
#include "gpusim/device.hpp"
#include "gpusim/simulator.hpp"
#include "mlp/regressor.hpp"
#include "search/factory.hpp"
#include "tuning/collector.hpp"
#include "tuning/dataset.hpp"
#include "tuning/search_space.hpp"

namespace {

using namespace isaac;

const mlp::Regressor& model() {
  static const mlp::Regressor m = [] {
    gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 9);
    tuning::CollectorConfig cfg;
    cfg.num_samples = 1500;
    cfg.seed = 9;
    const auto report = tuning::collect_gemm(sim, cfg);
    mlp::TrainConfig tc;
    tc.net.hidden = {64, 128, 64};
    tc.epochs = 6;
    return mlp::train(report.dataset, tc);
  }();
  return m;
}

codegen::GemmShape bench_shape() {
  codegen::GemmShape s;
  s.m = 2560;
  s.n = 32;
  s.k = 2560;
  return s;
}

void BM_ValidateConfig(benchmark::State& state) {
  const tuning::GemmSearchSpace space;
  Rng rng(1);
  const auto shape = bench_shape();
  const auto& dev = gpusim::tesla_p100();
  std::vector<codegen::GemmTuning> configs;
  for (int i = 0; i < 512; ++i) configs.push_back(space.sample_uniform(rng));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codegen::validate(shape, configs[i++ % configs.size()], dev));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ValidateConfig);

void BM_AnalyzeConfig(benchmark::State& state) {
  const auto shape = bench_shape();
  const auto& dev = gpusim::tesla_p100();
  codegen::GemmTuning t;
  t.ms = 4;
  t.ns = 4;
  t.ml = 64;
  t.nl = 32;
  t.u = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codegen::analyze(shape, t, dev));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnalyzeConfig);

void BM_SimulatorLaunch(benchmark::State& state) {
  const auto shape = bench_shape();
  const auto& dev = gpusim::tesla_p100();
  gpusim::Simulator sim(dev, 0.03, 3);
  codegen::GemmTuning t;
  t.ms = 4;
  t.ns = 4;
  t.ml = 64;
  t.nl = 32;
  t.u = 8;
  const auto profile = codegen::analyze(shape, t, dev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.launch(profile));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorLaunch);

void BM_ModelScoring(benchmark::State& state) {
  // Batched MLP scoring — the paper's "million configurations per second"
  // claim lives or dies here. items/s in the report = configurations/s.
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto shape = bench_shape();
  const tuning::GemmSearchSpace space;
  Rng rng(7);
  std::vector<std::vector<double>> rows;
  rows.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    rows.push_back(tuning::features(shape, space.sample_uniform(rng)));
  }
  const auto& m = model();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.predict_gflops_batch(rows));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ModelScoring)->Arg(256)->Arg(4096)->Arg(16384);

// ---------------------------------------------------------------- dispatch --

core::ContextOptions dispatch_options() {
  core::ContextOptions opts;
  opts.search.budget = 10;
  opts.search.reeval_reps = 3;
  opts.search.max_candidates = 8000;
  return opts;
}

core::Context& dispatch_context() {
  // Context is non-movable (it owns mutexes): build it in place and install
  // the model inside the thread-safe one-time initialization.
  static core::Context& ctx = []() -> core::Context& {
    static core::Context c(gpusim::tesla_p100(), dispatch_options());
    c.set_model(model());
    return c;
  }();
  return ctx;
}

std::vector<codegen::GemmShape> dispatch_shapes() {
  std::vector<codegen::GemmShape> shapes;
  for (const std::int64_t n : {8, 16, 24, 32}) {
    codegen::GemmShape s;
    s.m = 64;
    s.n = n;
    s.k = 64;
    shapes.push_back(s);
  }
  return shapes;
}

void BM_DispatchThroughput(benchmark::State& state) {
  // Hot-path queries/sec against one shared Context: every call takes the
  // shared-locked cache lookup, executes the selected kernel functionally,
  // and re-times it on the device model. Threads(N) reports aggregate
  // items/s across N concurrent callers.
  auto& ctx = dispatch_context();
  const auto shapes = dispatch_shapes();
  if (state.thread_index() == 0) {
    ctx.warmup(shapes).wait();  // all shapes hot before timing starts
    ctx.drain_background();     // …and fully refined: no tuning noise in-loop
  }

  // Per-thread buffers sized for the largest shape.
  std::vector<float> a(64 * 64, 0.5f), b(64 * 32, 0.25f), c(64 * 32, 0.0f);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& shape = shapes[i++ % shapes.size()];
    const auto info = ctx.gemm(shape, 1.0f, a.data(), shape.m, b.data(), shape.k, 0.0f,
                               c.data(), shape.m);
    benchmark::DoNotOptimize(info.gflops);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchThroughput)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

void BM_DispatchSelectOnly(benchmark::State& state) {
  // The selection path alone (no kernel execution): the pure dispatch
  // overhead a server pays per query once everything is cached.
  auto& ctx = dispatch_context();
  const auto shapes = dispatch_shapes();
  if (state.thread_index() == 0) {
    ctx.warmup(shapes).wait();
    ctx.drain_background();
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.select<core::GemmOp>(shapes[i++ % shapes.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DispatchSelectOnly)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

void BM_GenerativeSampling(benchmark::State& state) {
  const tuning::GemmSearchSpace space;
  tuning::CategoricalModel gen(space.domains());
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenerativeSampling);

// ------------------------------------------------------- dispatch latency --

/// Cold-dispatch latency mode: `--dispatch_latency` times the first
/// `select()` for a grid of distinct cold shapes under two-tier dispatch
/// (tier 1: the model's instant argmax + background refinement) and under
/// blocking tuning, reporting p50/p99 per mode, the speedup, and how often
/// the refined entry agrees with the blocking search's selection. One JSON
/// line per mode plus a summary line on stdout.
int run_dispatch_latency() {
  const auto& m = model();

  // Distinct cold shapes spanning square, skinny and deep regimes.
  std::vector<codegen::GemmShape> shapes;
  for (const std::int64_t base : {64, 96, 128, 192, 256, 384, 512, 768}) {
    for (const std::int64_t n : {16, 48, 133, 301, 512, 1024}) {
      codegen::GemmShape s;
      s.m = base;
      s.n = n;
      s.k = base + n;  // keep every (m, n, k) distinct
      shapes.push_back(s);
    }
  }

  core::ContextOptions opts = dispatch_options();
  opts.noise_sigma = 0.0;  // deterministic measurements: selections comparable
  core::Context fast(gpusim::tesla_p100(), opts);
  fast.set_model(m);
  auto blocking_opts = opts;
  blocking_opts.two_tier = false;
  core::Context blocking(gpusim::tesla_p100(), blocking_opts);
  blocking.set_model(m);

  const auto time_select_us = [](core::Context& ctx, const codegen::GemmShape& shape) {
    const auto t0 = std::chrono::steady_clock::now();
    ctx.select<core::GemmOp>(shape);
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  std::vector<double> fast_us, blocking_us;
  fast_us.reserve(shapes.size());
  blocking_us.reserve(shapes.size());
  for (const auto& shape : shapes) {
    fast_us.push_back(time_select_us(fast, shape));
    // Land the refinement outside the timed section: each sample then
    // measures the pure tier-1 path instead of racing the previous shape's
    // background search for cores (which would swamp p99 on small CI
    // runners; refinement/dispatch overlap is the throughput benches' job).
    fast.drain_background();
  }
  for (const auto& shape : shapes) blocking_us.push_back(time_select_us(blocking, shape));

  std::size_t agree = 0;
  const std::string& dev = fast.device().name;
  for (const auto& shape : shapes) {
    const auto refined = fast.cache().lookup<core::GemmOp>(dev, shape);
    const auto truth = blocking.cache().lookup<core::GemmOp>(dev, shape);
    if (refined && truth && *refined == *truth) ++agree;
  }

  const auto emit = [&](const char* mode, const std::vector<double>& us) {
    std::printf(
        "{\"bench\":\"dispatch_latency\",\"op\":\"gemm\",\"mode\":\"%s\","
        "\"cold_shapes\":%zu,\"p50_us\":%.1f,\"p99_us\":%.1f,\"max_us\":%.1f}\n",
        mode, us.size(), stats::percentile(us, 0.50), stats::percentile(us, 0.99),
        *std::max_element(us.begin(), us.end()));
  };
  emit("two_tier", fast_us);
  emit("blocking", blocking_us);
  std::printf(
      "{\"bench\":\"dispatch_latency\",\"op\":\"gemm\",\"mode\":\"summary\","
      "\"p99_speedup\":%.1f,\"refined_agreement\":%.3f,\"predictions\":%zu,"
      "\"refinements\":%zu}\n",
      stats::percentile(blocking_us, 0.99) / stats::percentile(fast_us, 0.99),
      static_cast<double>(agree) / static_cast<double>(shapes.size()), fast.predictions(),
      fast.refinements());
  std::fflush(stdout);
  return 0;
}

// ------------------------------------------------------------ search sweep --

/// Strategy × budget sweep over a fixed shape set; one JSON object per line
/// on stdout (everything else goes to stderr via the logger), so downstream
/// tooling can `jq` the perf trajectory across PRs.
int run_search_sweep() {
  const gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 9);
  const auto& m = model();

  std::vector<codegen::GemmShape> shapes;
  for (const auto& [mm, nn, kk] :
       {std::array<std::int64_t, 3>{512, 512, 512}, std::array<std::int64_t, 3>{2560, 32, 2560},
        std::array<std::int64_t, 3>{64, 64, 8192}}) {
    codegen::GemmShape s;
    s.m = mm;
    s.n = nn;
    s.k = kk;
    shapes.push_back(s);
  }

  for (const auto& strategy : search::strategy_names()) {
    for (const std::size_t budget : {16, 64, 256}) {
      for (const auto& shape : shapes) {
        search::SearchConfig cfg;
        cfg.strategy = strategy;
        cfg.budget = budget;
        cfg.reeval_reps = 3;
        cfg.max_candidates = 20000;
        const auto t0 = std::chrono::steady_clock::now();
        core::GemmTuneResult result;
        try {
          result = core::tune_gemm(shape, m, sim, cfg);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "[sweep] %s budget=%zu %s failed: %s\n", strategy.c_str(),
                       budget, shape.to_string().c_str(), e.what());
          continue;
        }
        const double wall_ms =
            std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                .count();
        std::printf(
            "{\"bench\":\"search_sweep\",\"op\":\"gemm\",\"strategy\":\"%s\","
            "\"budget\":%zu,\"shape\":\"%s\",\"best_gflops\":%.3f,"
            "\"predicted_gflops\":%.3f,\"kernel\":\"%s\",\"measured\":%zu,"
            "\"legal\":%zu,\"enumerated\":%zu,\"wall_ms\":%.3f}\n",
            strategy.c_str(), budget, shape.to_string().c_str(),
            result.best.measured_gflops, result.best.predicted_gflops,
            result.best.tuning.to_string().c_str(), result.measured, result.legal,
            result.enumerated, wall_ms);
        std::fflush(stdout);
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--search_sweep") return run_search_sweep();
    if (std::string(argv[i]) == "--dispatch_latency") return run_dispatch_latency();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
