// Microbenchmarks (google-benchmark) for the §6 runtime-inference claims:
// the regression model evaluates "very quickly, in parallel, with constant
// latency" — up to a million configurations per second — while the legality
// check and the simulator launch stay negligible next to real kernel timing.
#include <benchmark/benchmark.h>

#include "codegen/gemm.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "gpusim/simulator.hpp"
#include "mlp/regressor.hpp"
#include "tuning/collector.hpp"
#include "tuning/dataset.hpp"
#include "tuning/search_space.hpp"

namespace {

using namespace isaac;

const mlp::Regressor& model() {
  static const mlp::Regressor m = [] {
    gpusim::Simulator sim(gpusim::tesla_p100(), 0.03, 9);
    tuning::CollectorConfig cfg;
    cfg.num_samples = 1500;
    cfg.seed = 9;
    const auto report = tuning::collect_gemm(sim, cfg);
    mlp::TrainConfig tc;
    tc.net.hidden = {64, 128, 64};
    tc.epochs = 6;
    return mlp::train(report.dataset, tc);
  }();
  return m;
}

codegen::GemmShape bench_shape() {
  codegen::GemmShape s;
  s.m = 2560;
  s.n = 32;
  s.k = 2560;
  return s;
}

void BM_ValidateConfig(benchmark::State& state) {
  const tuning::GemmSearchSpace space;
  Rng rng(1);
  const auto shape = bench_shape();
  const auto& dev = gpusim::tesla_p100();
  std::vector<codegen::GemmTuning> configs;
  for (int i = 0; i < 512; ++i) configs.push_back(space.sample_uniform(rng));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codegen::validate(shape, configs[i++ % configs.size()], dev));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ValidateConfig);

void BM_AnalyzeConfig(benchmark::State& state) {
  const auto shape = bench_shape();
  const auto& dev = gpusim::tesla_p100();
  codegen::GemmTuning t;
  t.ms = 4;
  t.ns = 4;
  t.ml = 64;
  t.nl = 32;
  t.u = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codegen::analyze(shape, t, dev));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnalyzeConfig);

void BM_SimulatorLaunch(benchmark::State& state) {
  const auto shape = bench_shape();
  const auto& dev = gpusim::tesla_p100();
  gpusim::Simulator sim(dev, 0.03, 3);
  codegen::GemmTuning t;
  t.ms = 4;
  t.ns = 4;
  t.ml = 64;
  t.nl = 32;
  t.u = 8;
  const auto profile = codegen::analyze(shape, t, dev);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.launch(profile));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorLaunch);

void BM_ModelScoring(benchmark::State& state) {
  // Batched MLP scoring — the paper's "million configurations per second"
  // claim lives or dies here. items/s in the report = configurations/s.
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto shape = bench_shape();
  const tuning::GemmSearchSpace space;
  Rng rng(7);
  std::vector<std::vector<double>> rows;
  rows.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    rows.push_back(tuning::features(shape, space.sample_uniform(rng)));
  }
  const auto& m = model();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.predict_gflops_batch(rows));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ModelScoring)->Arg(256)->Arg(4096)->Arg(16384);

void BM_GenerativeSampling(benchmark::State& state) {
  const tuning::GemmSearchSpace space;
  tuning::CategoricalModel gen(space.domains());
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GenerativeSampling);

}  // namespace

BENCHMARK_MAIN();
